package x10rt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apgas/internal/obs"
)

// wireEpoch anchors the ledger's monotonic nanosecond clock. Encode and
// decode timings are durations (differences of wireNow values), so the
// epoch itself never shows in any account.
var wireEpoch = time.Now()

// wireNow returns monotonic nanoseconds for serialization timing. Only
// called when a ledger is attached, so the disabled path never reads
// the clock.
func wireNow() int64 { return int64(time.Since(wireEpoch)) }

// This file is the wire observatory's accounting core: a message-level
// cost-attribution ledger that explains *which* handler's traffic costs
// what on *which* link. x10rt.Stats answers "how many bytes moved";
// the ledger answers the question the wire-codec work (ROADMAP item 1)
// actually needs: where encode/decode nanoseconds, post-batch wire
// bytes, batch queue wait, and compression wins concentrate, by
// (handler id) and by (src → dst) link.
//
// Overhead discipline matches the rest of the observability stack:
// every transport holds an atomic.Pointer[WireLedger] that is nil until
// a ledger is attached, so the disabled cost of every record site is
// one pointer load and branch, and zero allocations. All WireLedger
// methods are nil-receiver safe for the same reason.
//
// Attribution rules, chosen so the ledger stays sum-equal with the
// transport counters it refines:
//
//   - Sends are attributed to the sending place at the moment the
//     inner (wire-touching) transport accepts the message — exactly
//     beside the counters.add calls — so Σ per-handler payload bytes
//     equals Σ x10rt.bytes.<class> and Σ per-link wire bytes equals
//     x10rt.bytes.wire, by construction.
//   - Wire bytes, queue wait, and compression are per-link: a batch
//     frame carries many handlers but hits the wire once.
//   - Decode time is attributed to the receiving place (ingress), in
//     fields kept out of the egress sum-equality.
//   - Telemetry traffic (HandlerTelemetry) is never recorded, matching
//     countable().

// LedgerSink is implemented by transports that can attribute their
// traffic to a WireLedger. Decorator transports (batching, counting,
// chaos) forward the attachment to the layer that actually touches the
// wire, and may additionally record their own costs (the
// BatchingTransport records queue wait).
type LedgerSink interface {
	AttachWireLedger(lg *WireLedger)
}

// hkey identifies one handler's account at one place.
type hkey struct {
	place int
	id    HandlerID
}

// lkey identifies one directed link's account.
type lkey struct {
	src, dst int
}

// handlerAccount accumulates one (place, handler) cell. Egress fields
// (msgs, bytes, encNs) are attributed to the sending place; ingress
// fields (recvMsgs, decNs) to the receiving place.
type handlerAccount struct {
	msgs     obs.Counter // messages sent naming this handler
	bytes    obs.Counter // modeled payload bytes sent
	encNs    obs.Counter // cumulative serialization (gob encode) ns
	recvMsgs obs.Counter // messages received for this handler
	decNs    obs.Counter // cumulative deserialization (gob decode) ns
}

// linkAccount accumulates one (src → dst) cell.
type linkAccount struct {
	msgs    obs.Counter // messages sent on the link
	bytes   obs.Counter // modeled payload bytes sent on the link
	wire    obs.Counter // post-batch, post-compression frame bytes
	raw     obs.Counter // encoded batch bodies before compression
	comp    obs.Counter // the same bodies as shipped (== raw when not compressed)
	qwaitNs obs.Counter // batch queue wait (oldest message, per flush)
	batches obs.Counter // batch flushes on the link
}

// WireLedger attributes transport traffic to (handler, place) and
// (src → dst) accounts. Accounts are created lazily on first touch;
// the hot path reads copy-on-write maps through atomic pointers, so
// recording takes no locks after an account exists.
type WireLedger struct {
	places int
	reg    func(p int) *obs.Registry // per-place registry provider, may be nil

	handlers atomic.Pointer[map[hkey]*handlerAccount]
	links    atomic.Pointer[map[lkey]*linkAccount]
	mu       sync.Mutex // serializes account creation (copy-on-write)
}

// NewWireLedger creates a ledger for a mesh of places. reg, when
// non-nil, provides the per-place registry each new account registers
// its counters in, under the names x10rt.h<ID>.{msgs,bytes,enc_ns,
// recv,dec_ns} and x10rt.link.<src>-<dst>.{msgs,bytes,wire,raw,comp,
// qwait_ns,batches} — unqualified, like all per-place metrics, so the
// telemetry plane merges them by name across places.
func NewWireLedger(places int, reg func(p int) *obs.Registry) *WireLedger {
	return &WireLedger{places: places, reg: reg}
}

// NumPlaces returns the mesh size the ledger was created for.
func (lg *WireLedger) NumPlaces() int {
	if lg == nil {
		return 0
	}
	return lg.places
}

// HandlerName returns a stable short name for a handler id, used by
// the /wire report ("spawn", "finishctl", ..., "u<n>" for user ids).
func HandlerName(id HandlerID) string {
	switch id {
	case HandlerSpawn:
		return "spawn"
	case HandlerFinishCtl:
		return "finishctl"
	case HandlerClockCtl:
		return "clockctl"
	case HandlerTeamCtl:
		return "teamctl"
	case HandlerCopy:
		return "copy"
	case HandlerGUPS:
		return "gups"
	case HandlerTelemetry:
		return "telemetry"
	case HandlerOneSided:
		return "onesided"
	}
	if id >= UserHandlerBase {
		return fmt.Sprintf("u%d", uint32(id-UserHandlerBase))
	}
	return fmt.Sprintf("h%d", uint32(id))
}

// handler returns the (place, id) account, creating and registering it
// on first touch.
func (lg *WireLedger) handler(place int, id HandlerID) *handlerAccount {
	k := hkey{place, id}
	if m := lg.handlers.Load(); m != nil {
		if a, ok := (*m)[k]; ok {
			return a
		}
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	old := lg.handlers.Load()
	if old != nil {
		if a, ok := (*old)[k]; ok {
			return a
		}
	}
	next := make(map[hkey]*handlerAccount, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	a := &handlerAccount{}
	next[k] = a
	if lg.reg != nil {
		if r := lg.reg(place); r != nil {
			prefix := fmt.Sprintf("x10rt.h%d.", uint32(id))
			r.RegisterCounter(prefix+"msgs", &a.msgs)
			r.RegisterCounter(prefix+"bytes", &a.bytes)
			r.RegisterCounter(prefix+"enc_ns", &a.encNs)
			r.RegisterCounter(prefix+"recv", &a.recvMsgs)
			r.RegisterCounter(prefix+"dec_ns", &a.decNs)
		}
	}
	lg.handlers.Store(&next)
	return a
}

// link returns the (src, dst) account, creating and registering it on
// first touch. Link counters live in the *sender's* place registry:
// wire accounting is egress accounting, like PlaceStats.
func (lg *WireLedger) link(src, dst int) *linkAccount {
	k := lkey{src, dst}
	if m := lg.links.Load(); m != nil {
		if a, ok := (*m)[k]; ok {
			return a
		}
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	old := lg.links.Load()
	if old != nil {
		if a, ok := (*old)[k]; ok {
			return a
		}
	}
	next := make(map[lkey]*linkAccount, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	a := &linkAccount{}
	next[k] = a
	if lg.reg != nil {
		if r := lg.reg(src); r != nil {
			prefix := fmt.Sprintf("x10rt.link.%d-%d.", src, dst)
			r.RegisterCounter(prefix+"msgs", &a.msgs)
			r.RegisterCounter(prefix+"bytes", &a.bytes)
			r.RegisterCounter(prefix+"wire", &a.wire)
			r.RegisterCounter(prefix+"raw", &a.raw)
			r.RegisterCounter(prefix+"comp", &a.comp)
			r.RegisterCounter(prefix+"qwait_ns", &a.qwaitNs)
			r.RegisterCounter(prefix+"batches", &a.batches)
		}
	}
	lg.links.Store(&next)
	return a
}

// RecordSend attributes one sent message: handler (msgs, payload
// bytes) at the sending place and link (msgs, payload bytes). Called
// exactly where the wire-touching transport updates its class
// counters, so the ledger and x10rt.bytes.* stay sum-equal.
func (lg *WireLedger) RecordSend(src, dst int, id HandlerID, bytes int) {
	if lg == nil || !countable(id) {
		return
	}
	h := lg.handler(src, id)
	h.msgs.Inc()
	h.bytes.Add(uint64(bytes))
	l := lg.link(src, dst)
	l.msgs.Inc()
	l.bytes.Add(uint64(bytes))
}

// RecordWire attributes frame bytes actually written on the link,
// post-batch and post-compression — beside every counters.addWire.
func (lg *WireLedger) RecordWire(src, dst int, frameBytes int) {
	if lg == nil {
		return
	}
	lg.link(src, dst).wire.Add(uint64(frameBytes))
}

// RecordEncode attributes ns of serialization work for one message to
// its handler at the sending place.
func (lg *WireLedger) RecordEncode(src int, id HandlerID, ns int64) {
	if lg == nil || !countable(id) || ns < 0 {
		return
	}
	lg.handler(src, id).encNs.Add(uint64(ns))
}

// RecordRecv attributes one received message and its deserialization
// ns to the handler at the receiving place. Transports that do not
// deserialize pass ns == 0.
func (lg *WireLedger) RecordRecv(dst int, id HandlerID, ns int64) {
	if lg == nil || !countable(id) {
		return
	}
	a := lg.handler(dst, id)
	a.recvMsgs.Inc()
	if ns > 0 {
		a.decNs.Add(uint64(ns))
	}
}

// RecordBatchBody attributes one encoded batch body on the link: raw
// is the encoded size before compression, comp the size as shipped
// (equal to raw when compression was skipped or did not win). The
// link's compression ratio is raw/comp.
func (lg *WireLedger) RecordBatchBody(src, dst int, raw, comp int) {
	if lg == nil {
		return
	}
	l := lg.link(src, dst)
	l.raw.Add(uint64(raw))
	l.comp.Add(uint64(comp))
}

// RecordQueueWait attributes one batch flush on the link: ns is how
// long the oldest queued message waited. The mean wait per flush is
// qwait_ns / batches.
func (lg *WireLedger) RecordQueueWait(src, dst int, ns int64) {
	if lg == nil {
		return
	}
	l := lg.link(src, dst)
	l.batches.Inc()
	if ns > 0 {
		l.qwaitNs.Add(uint64(ns))
	}
}

// WireHandlerStat is one (place, handler) row of a ledger snapshot.
type WireHandlerStat struct {
	Place    int       `json:"place"`
	ID       HandlerID `json:"id"`
	Name     string    `json:"name"`
	Msgs     uint64    `json:"msgs"`
	Bytes    uint64    `json:"bytes"`
	EncNs    uint64    `json:"enc_ns"`
	RecvMsgs uint64    `json:"recv"`
	DecNs    uint64    `json:"dec_ns"`
}

// WireLinkStat is one (src → dst) row of a ledger snapshot.
type WireLinkStat struct {
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Wire    uint64 `json:"wire"`
	Raw     uint64 `json:"raw"`
	Comp    uint64 `json:"comp"`
	QwaitNs uint64 `json:"qwait_ns"`
	Batches uint64 `json:"batches"`
}

// WireSnapshot is a point-in-time copy of a ledger.
type WireSnapshot struct {
	Places   int               `json:"places"`
	Handlers []WireHandlerStat `json:"handlers"`
	Links    []WireLinkStat    `json:"links"`
}

// TotalPayloadBytes sums payload bytes over the handler rows; it must
// equal the transport's TotalBytes (Σ x10rt.bytes.<class>).
func (s WireSnapshot) TotalPayloadBytes() uint64 {
	var n uint64
	for _, h := range s.Handlers {
		n += h.Bytes
	}
	return n
}

// TotalWireBytes sums wire bytes over the link rows; it must equal the
// transport's Stats().WireBytes (x10rt.bytes.wire).
func (s WireSnapshot) TotalWireBytes() uint64 {
	var n uint64
	for _, l := range s.Links {
		n += l.Wire
	}
	return n
}

// Snapshot returns a deterministic (sorted) copy of every account.
func (lg *WireLedger) Snapshot() WireSnapshot {
	if lg == nil {
		return WireSnapshot{}
	}
	s := WireSnapshot{Places: lg.places}
	if m := lg.handlers.Load(); m != nil {
		for k, a := range *m {
			s.Handlers = append(s.Handlers, WireHandlerStat{
				Place:    k.place,
				ID:       k.id,
				Name:     HandlerName(k.id),
				Msgs:     a.msgs.Value(),
				Bytes:    a.bytes.Value(),
				EncNs:    a.encNs.Value(),
				RecvMsgs: a.recvMsgs.Value(),
				DecNs:    a.decNs.Value(),
			})
		}
	}
	if m := lg.links.Load(); m != nil {
		for k, a := range *m {
			s.Links = append(s.Links, WireLinkStat{
				Src:     k.src,
				Dst:     k.dst,
				Msgs:    a.msgs.Value(),
				Bytes:   a.bytes.Value(),
				Wire:    a.wire.Value(),
				Raw:     a.raw.Value(),
				Comp:    a.comp.Value(),
				QwaitNs: a.qwaitNs.Value(),
				Batches: a.batches.Value(),
			})
		}
	}
	sort.Slice(s.Handlers, func(i, j int) bool {
		if s.Handlers[i].Place != s.Handlers[j].Place {
			return s.Handlers[i].Place < s.Handlers[j].Place
		}
		return s.Handlers[i].ID < s.Handlers[j].ID
	})
	sort.Slice(s.Links, func(i, j int) bool {
		if s.Links[i].Src != s.Links[j].Src {
			return s.Links[i].Src < s.Links[j].Src
		}
		return s.Links[i].Dst < s.Links[j].Dst
	})
	return s
}
