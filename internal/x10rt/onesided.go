package x10rt

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// The one-sided lane is the transport's RDMA emulation done right: a
// put, get, or remote atomic is not an active message. It names an
// *arena* — a registered memory window, in practice one place's
// fragment of a congruent array — and an element offset, and the
// receiving transport lands the bytes directly in that window. No
// handler dispatch, no gob, no per-op allocation on the data path. The
// paper's GUPS numbers come from exactly this shape: the remote XOR
// lands in the congruent heap at an address the *sender* computed
// (§3.3).
//
// Frame v5 carries one op:
//
//	+-------+-----------+----------------------+---------------------+
//	| magic | version=5 | length (4 bytes, BE) | payload             |
//	+-------+-----------+----------------------+---------------------+
//
//	payload:
//	    uvarint(src) | kind byte | uvarint(arena) | uvarint(off)
//	    uvarint(elems)
//	    8-byte LE val                    kinds Xor, Add
//	    uvarint(replyArena)              kind Get
//	    4 × 8-byte LE token
//	    uvarint(dataLen) | data          kinds Put, XorBatch
//
// The token is opaque to this package: the core runtime packs its
// finish-credit reference into it so termination detection accounts
// one-sided ops exactly like asyncs, without this layer knowing what a
// finish is.

// OneSidedKind selects the operation. The zero value is invalid so a
// zeroed or torn frame cannot alias a real op.
type OneSidedKind uint8

const (
	// OneSidedPut copies the op's data into the target arena window.
	OneSidedPut OneSidedKind = iota + 1
	// OneSidedGet asks the target to reply with a Put of
	// [off, off+elems) into the requester's reply arena.
	OneSidedGet
	// OneSidedXor atomically xors val into element off.
	OneSidedXor
	// OneSidedAdd atomically adds val to element off.
	OneSidedAdd
	// OneSidedXorBatch applies elems packed (index, val) xor records.
	OneSidedXorBatch
	numOneSidedKinds
)

func (k OneSidedKind) String() string {
	switch k {
	case OneSidedPut:
		return "put"
	case OneSidedGet:
		return "get"
	case OneSidedXor:
		return "xor"
	case OneSidedAdd:
		return "add"
	case OneSidedXorBatch:
		return "xorbatch"
	default:
		return fmt.Sprintf("onesided(%d)", uint8(k))
	}
}

// oneSidedRecordBytes is one XorBatch record: uint32 index, uint64 val,
// both little-endian.
const oneSidedRecordBytes = 12

// OneSidedOp is one one-sided operation in flight. The sender fills the
// targeting fields plus exactly one data representation:
//
//   - Local: a typed slice (same element type as the arena) for
//     in-process transports — landed by the arena's PutLocal without
//     serialization. For Put over the lane this is the *caller's*
//     slice, not a copy: like real RDMA, the source buffer must stay
//     stable until the enclosing finish completes.
//   - Data: raw little-endian bytes (wire transports, XorBatch).
//   - Raw: an appender producing the little-endian encoding on demand —
//     wire transports call it to serialize a typed slice straight into
//     the outgoing frame staging buffer.
type OneSidedOp struct {
	Kind  OneSidedKind
	Arena uint64
	// Off is the element offset (Put/Get window start, Xor/Add index).
	Off   int
	Elems int
	// Val is the Xor/Add operand.
	Val uint64
	// Data is the raw little-endian payload (Put/XorBatch).
	Data []byte
	// Local is the typed payload for in-process delivery.
	Local any
	// Raw appends the little-endian encoding of Local to dst.
	Raw func(dst []byte) []byte
	// Bytes is the modeled data-section length: elems×elemSize for Put,
	// 12×elems for XorBatch, 0 for Get/Xor/Add. Channel transports use
	// OneSidedWireBytes (header + Bytes) as the modeled wire cost; wire
	// transports account the real frame.
	Bytes int
	// ReplyArena is the requester's (usually transient) arena a Get
	// reply lands in.
	ReplyArena uint64
	// Token carries the core runtime's packed finish credit.
	Token [4]uint64
	// Applied marks data already landed by the transport (direct
	// window read); Apply then only runs side effects.
	Applied bool
}

// OneSidedSender is implemented by transports with a one-sided lane.
// SendOneSided ships op from src to dst with per-link FIFO ordering
// relative to Send on the same link and DataClass accounting under
// HandlerOneSided.
type OneSidedSender interface {
	SendOneSided(src, dst int, op *OneSidedOp) error
}

// OneSidedSink is implemented by transports that can land one-sided
// ops; the runtime hands them the process-wide arena table at startup.
type OneSidedSink interface {
	AttachArenas(*ArenaTable)
}

// OneSidedHook intercepts every landing op (the core runtime's finish
// accounting). reply ships a response op from dst back toward src —
// only Get uses it. The hook is responsible for calling
// ArenaTable.Apply.
type OneSidedHook func(src, dst int, op *OneSidedOp, reply func(*OneSidedOp) error) error

// Arena is one registered memory window. The closures are built by the
// owner (internal/congruent) over the typed fragment so this package
// never reflects on element types.
type Arena struct {
	// Elems and ElemSize describe the window: Elems elements of
	// ElemSize bytes each.
	Elems    int
	ElemSize int
	// Raw, when non-nil, is the window's byte backing ([]byte arenas):
	// wire transports land Put data by reading straight into it.
	Raw []byte
	// PutLocal copies a typed slice into [off, off+len).
	PutLocal func(off int, local any)
	// PutLE decodes little-endian bytes into [off, off+elems).
	PutLE func(off, elems int, data []byte)
	// ReadOp snapshots [off, off+elems), returning the typed slice and
	// a little-endian appender over the same snapshot (Get replies).
	ReadOp func(off, elems int) (local any, raw func(dst []byte) []byte)
	// Xor and Add are atomic read-modify-writes on element idx —
	// multiple transport readers may land concurrently.
	Xor func(idx int, val uint64)
	Add func(idx int, val uint64)
	// Transient arenas unregister after the first Put lands: Get-reply
	// windows live for exactly one response.
	Transient bool
}

type arenaKey struct {
	place int
	id    uint64
}

// ArenaTable is the process-wide registry of one-sided windows, keyed
// by (owning place, arena id). Arena ids come from Reserve and are
// identical on every place for congruent allocations (all places
// allocate in the same order), which is what lets a sender name remote
// memory it has never seen.
type ArenaTable struct {
	mu     sync.RWMutex
	arenas map[arenaKey]*Arena
	nextID atomic.Uint64
	hook   atomic.Pointer[OneSidedHook]
}

// NewArenaTable returns an empty table.
func NewArenaTable() *ArenaTable {
	return &ArenaTable{arenas: make(map[arenaKey]*Arena)}
}

// Reserve allocates the next arena id. Callers relying on symmetric
// ids must call it in the same global order on every place (congruent
// allocations do, by construction).
func (at *ArenaTable) Reserve() uint64 { return at.nextID.Add(1) }

// Register installs a window for (place, id), replacing any previous
// registration.
func (at *ArenaTable) Register(place int, id uint64, a *Arena) {
	at.mu.Lock()
	at.arenas[arenaKey{place, id}] = a
	at.mu.Unlock()
}

// Remove drops a window.
func (at *ArenaTable) Remove(place int, id uint64) {
	at.mu.Lock()
	delete(at.arenas, arenaKey{place, id})
	at.mu.Unlock()
}

func (at *ArenaTable) lookup(place int, id uint64) (*Arena, error) {
	at.mu.RLock()
	a := at.arenas[arenaKey{place, id}]
	at.mu.RUnlock()
	if a == nil {
		return nil, fmt.Errorf("%w: one-sided op names unknown arena %d at place %d",
			ErrFrameCorrupt, id, place)
	}
	return a, nil
}

// SetHook installs the landing interceptor (nil uninstalls).
func (at *ArenaTable) SetHook(h OneSidedHook) {
	if h == nil {
		at.hook.Store(nil)
		return
	}
	at.hook.Store(&h)
}

// Land delivers op at dst: through the hook when one is installed
// (finish accounting), straight to Apply otherwise.
func (at *ArenaTable) Land(src, dst int, op *OneSidedOp, reply func(*OneSidedOp) error) error {
	if h := at.hook.Load(); h != nil {
		return (*h)(src, dst, op, reply)
	}
	return at.Apply(src, dst, op, reply)
}

// Apply performs op's memory effect at dst. Every bound is validated
// here — ops arrive off the network — and violations are errors, never
// panics: a hostile frame costs its own connection, not the process.
func (at *ArenaTable) Apply(src, dst int, op *OneSidedOp, reply func(*OneSidedOp) error) error {
	a, err := at.lookup(dst, op.Arena)
	if err != nil {
		return err
	}
	switch op.Kind {
	case OneSidedPut:
		if op.Off < 0 || op.Elems < 0 || op.Off > a.Elems || op.Elems > a.Elems-op.Off {
			return fmt.Errorf("%w: put [%d,+%d) outside arena of %d elems",
				ErrFrameCorrupt, op.Off, op.Elems, a.Elems)
		}
		if !op.Applied {
			switch {
			case op.Local != nil:
				if a.PutLocal == nil {
					return fmt.Errorf("x10rt: arena %d has no local put", op.Arena)
				}
				a.PutLocal(op.Off, op.Local)
			default:
				if len(op.Data) != op.Elems*a.ElemSize {
					return fmt.Errorf("%w: put data %d bytes, want %d",
						ErrFrameCorrupt, len(op.Data), op.Elems*a.ElemSize)
				}
				if a.PutLE == nil {
					return fmt.Errorf("x10rt: arena %d has no wire put", op.Arena)
				}
				a.PutLE(op.Off, op.Elems, op.Data)
			}
		}
		if a.Transient {
			at.Remove(dst, op.Arena)
		}
		return nil
	case OneSidedGet:
		if op.Off < 0 || op.Elems < 0 || op.Off > a.Elems || op.Elems > a.Elems-op.Off {
			return fmt.Errorf("%w: get [%d,+%d) outside arena of %d elems",
				ErrFrameCorrupt, op.Off, op.Elems, a.Elems)
		}
		if a.ReadOp == nil {
			return fmt.Errorf("x10rt: arena %d has no read", op.Arena)
		}
		if reply == nil {
			return fmt.Errorf("x10rt: transport cannot reply to one-sided get")
		}
		local, raw := a.ReadOp(op.Off, op.Elems)
		return reply(&OneSidedOp{
			Kind:  OneSidedPut,
			Arena: op.ReplyArena,
			Elems: op.Elems,
			Local: local,
			Raw:   raw,
			Bytes: op.Elems * a.ElemSize,
			Token: op.Token,
		})
	case OneSidedXor, OneSidedAdd:
		if op.Off < 0 || op.Off >= a.Elems {
			return fmt.Errorf("%w: %s index %d outside arena of %d elems",
				ErrFrameCorrupt, op.Kind, op.Off, a.Elems)
		}
		f := a.Xor
		if op.Kind == OneSidedAdd {
			f = a.Add
		}
		if f == nil {
			return fmt.Errorf("x10rt: arena %d has no %s", op.Arena, op.Kind)
		}
		f(op.Off, op.Val)
		return nil
	case OneSidedXorBatch:
		if a.Xor == nil {
			return fmt.Errorf("x10rt: arena %d has no xor", op.Arena)
		}
		if op.Elems < 0 || len(op.Data) != op.Elems*oneSidedRecordBytes {
			return fmt.Errorf("%w: xorbatch data %d bytes for %d records",
				ErrFrameCorrupt, len(op.Data), op.Elems)
		}
		for r := 0; r < op.Elems; r++ {
			rec := op.Data[r*oneSidedRecordBytes:]
			idx := int(binary.LittleEndian.Uint32(rec))
			if idx >= a.Elems {
				return fmt.Errorf("%w: xorbatch index %d outside arena of %d elems",
					ErrFrameCorrupt, idx, a.Elems)
			}
			a.Xor(idx, binary.LittleEndian.Uint64(rec[4:]))
		}
		return nil
	default:
		return fmt.Errorf("%w: one-sided kind %d", ErrFrameCorrupt, op.Kind)
	}
}

// RawWindow returns the byte window a Put op lands in when the target
// arena is byte-backed — wire transports read the payload straight into
// it (true zero copy). nil, nil means "no direct window, stage instead".
func (at *ArenaTable) RawWindow(dst int, op *OneSidedOp) ([]byte, error) {
	if op.Kind != OneSidedPut {
		return nil, nil
	}
	a, err := at.lookup(dst, op.Arena)
	if err != nil {
		return nil, err
	}
	if a.Raw == nil || a.ElemSize != 1 {
		return nil, nil
	}
	if op.Off < 0 || op.Elems < 0 || op.Off > a.Elems || op.Elems > a.Elems-op.Off {
		return nil, fmt.Errorf("%w: put [%d,+%d) outside arena of %d elems",
			ErrFrameCorrupt, op.Off, op.Elems, a.Elems)
	}
	return a.Raw[op.Off : op.Off+op.Elems], nil
}

// frame v5 encode/decode ----------------------------------------------

// frameVersionOneSided marks a one-sided op frame.
const frameVersionOneSided = 5

// oneSidedDataLen is the data-section length op ships: explicit Data
// wins, otherwise the modeled Bytes (the Raw appender produces exactly
// elems×elemSize bytes by contract).
func oneSidedDataLen(op *OneSidedOp) int {
	if op.Data != nil {
		return len(op.Data)
	}
	if op.Kind == OneSidedPut || op.Kind == OneSidedXorBatch {
		return op.Bytes
	}
	return 0
}

// appendOneSidedHeader appends the complete v5 frame head — outer
// header plus op fields through the data-length prefix — to dst. The
// data section itself ships as a separate scatter-gather segment.
func appendOneSidedHeader(dst []byte, src int, op *OneSidedOp, dataLen int) ([]byte, error) {
	if op.Kind == 0 || op.Kind >= numOneSidedKinds {
		return dst, fmt.Errorf("x10rt: bad one-sided kind %d", op.Kind)
	}
	start := len(dst)
	dst = append(dst, frameMagic, frameVersionOneSided, 0, 0, 0, 0)
	dst = appendUvarint(dst, uint64(src))
	dst = append(dst, byte(op.Kind))
	dst = appendUvarint(dst, op.Arena)
	dst = appendUvarint(dst, uint64(op.Off))
	dst = appendUvarint(dst, uint64(op.Elems))
	if op.Kind == OneSidedXor || op.Kind == OneSidedAdd {
		dst = binary.LittleEndian.AppendUint64(dst, op.Val)
	}
	if op.Kind == OneSidedGet {
		dst = appendUvarint(dst, op.ReplyArena)
	}
	for _, t := range op.Token {
		dst = binary.LittleEndian.AppendUint64(dst, t)
	}
	dst = appendUvarint(dst, uint64(dataLen))
	payloadLen := len(dst) - start - frameHeaderSize + dataLen
	if payloadLen > MaxFrameSize {
		return dst, fmt.Errorf("%w: one-sided payload %d exceeds max %d",
			ErrFrameCorrupt, payloadLen, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(dst[start+2:start+6], uint32(payloadLen))
	return dst, nil
}

// OneSidedWireBytes is the exact v5 frame length op occupies. Channel
// transports use it as the modeled wire cost so ledger one-sided rows
// stay sum-equal with x10rt.bytes.wire.
func OneSidedWireBytes(src int, op *OneSidedOp) int {
	head, err := appendOneSidedHeader(nil, src, op, oneSidedDataLen(op))
	if err != nil {
		return 0
	}
	return len(head) + oneSidedDataLen(op)
}

// oneSidedByteReader is what the streaming parser needs: bufio.Reader
// on the wire, bytes.Reader in tests and fuzzing.
type oneSidedByteReader interface {
	io.Reader
	io.ByteReader
}

// countingReader counts consumed bytes so the parser can validate the
// op header against the frame's declared length before touching data.
type countingReader struct {
	r oneSidedByteReader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func readOneSidedUvarint(r *countingReader, max uint64) (uint64, error) {
	x, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: one-sided header: %v", ErrFrameCorrupt, err)
	}
	if x > max {
		return 0, fmt.Errorf("%w: one-sided field %d exceeds bound %d", ErrFrameCorrupt, x, max)
	}
	return x, nil
}

// parseOneSidedHeader reads the op fields (everything up to the data
// section) from r, which holds a v5 payload. It returns the op with
// Data unset plus the declared data length; the caller reads exactly
// dataLen more bytes — into the arena's raw window when RawWindow
// offers one, a staging buffer otherwise.
func parseOneSidedHeader(cr *countingReader, payloadLen int) (src int, op *OneSidedOp, dataLen int, err error) {
	src64, err := readOneSidedUvarint(cr, 1<<24)
	if err != nil {
		return 0, nil, 0, err
	}
	kb, err := cr.ReadByte()
	if err != nil {
		return 0, nil, 0, fmt.Errorf("%w: one-sided kind: %v", ErrFrameCorrupt, err)
	}
	kind := OneSidedKind(kb)
	if kind == 0 || kind >= numOneSidedKinds {
		return 0, nil, 0, fmt.Errorf("%w: one-sided kind %d", ErrFrameCorrupt, kb)
	}
	op = &OneSidedOp{Kind: kind}
	if op.Arena, err = readOneSidedUvarint(cr, 1<<62); err != nil {
		return 0, nil, 0, err
	}
	off, err := readOneSidedUvarint(cr, MaxFrameSize*8)
	if err != nil {
		return 0, nil, 0, err
	}
	op.Off = int(off)
	elems, err := readOneSidedUvarint(cr, MaxFrameSize*8)
	if err != nil {
		return 0, nil, 0, err
	}
	op.Elems = int(elems)
	var b8 [8]byte
	if kind == OneSidedXor || kind == OneSidedAdd {
		if _, err := io.ReadFull(cr, b8[:]); err != nil {
			return 0, nil, 0, fmt.Errorf("%w: one-sided val: %v", ErrFrameCorrupt, err)
		}
		op.Val = binary.LittleEndian.Uint64(b8[:])
	}
	if kind == OneSidedGet {
		if op.ReplyArena, err = readOneSidedUvarint(cr, 1<<62); err != nil {
			return 0, nil, 0, err
		}
	}
	for i := range op.Token {
		if _, err := io.ReadFull(cr, b8[:]); err != nil {
			return 0, nil, 0, fmt.Errorf("%w: one-sided token: %v", ErrFrameCorrupt, err)
		}
		op.Token[i] = binary.LittleEndian.Uint64(b8[:])
	}
	dl, err := readOneSidedUvarint(cr, MaxFrameSize)
	if err != nil {
		return 0, nil, 0, err
	}
	dataLen = int(dl)
	if cr.n+dataLen != payloadLen {
		return 0, nil, 0, fmt.Errorf("%w: one-sided header %d + data %d != payload %d",
			ErrFrameCorrupt, cr.n, dataLen, payloadLen)
	}
	op.Bytes = dataLen
	return int(src64), op, dataLen, nil
}
