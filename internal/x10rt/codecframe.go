package x10rt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
)

// Batch-frame v4: the codec batch. Shares the outer header with every
// other frame version and carries, per frame, the connection's new
// type-table announcements followed by binary-encoded messages:
//
//	+-------+-----------+----------------------+---------+-----------+
//	| magic | version=4 | length (4 bytes, BE) | flags   | body      |
//	+-------+-----------+----------------------+---------+-----------+
//
//	body:
//	    [uvarint(hlc)]                          flags & codecFlagHLC
//	    section — raw, or uvarint(rawLen) | DEFLATE(raw)
//	                                            flags & batchFlagCompressed
//	raw section:
//	    uvarint(src)
//	    uvarint(nNew) | nNew × (uvarint(id) | uvarint(len) | name)
//	    uvarint(count) | count × record
//	record:
//	    uvarint(handlerID) | class byte | uvarint(modeledBytes)
//	    uvarint(typeRef) | uvarint(payloadLen) | payload
//
// typeRef 0 is the gob fallback: the payload is a self-contained gob
// encoding of a gobPayload box, so arbitrary registered types still
// travel inside a codec batch. typeRef >= 1 indexes the connection's
// type table (typetable.go) and the payload is the named codec's raw
// little-endian encoding.
//
// The encoder emits scatter-gather segments (net.Buffers): payloads of
// at least codecZeroCopyMin bytes whose codec appends them verbatim
// ([]byte) are referenced, not copied, so a batched 1 MiB frame ships
// with writev instead of a staging copy. Compression forces a
// contiguous body and therefore disables the zero-copy cut.

const (
	// batchVersionCodec marks a codec batch frame.
	batchVersionCodec = 4
	// codecFlagHLC marks a body with an HLC prefix (v4's equivalent of
	// frame version 3).
	codecFlagHLC = 0x02
	// codecZeroCopyMin is the payload size from which a []byte payload
	// is shipped by reference (writev) instead of copied into the
	// staging buffer.
	codecZeroCopyMin = 4 << 10
)

// gobPayload boxes a fallback payload so the gob stream is
// self-contained per message (types the codec does not know still
// need gob's type descriptors).
type gobPayload struct{ V any }

// codecCut records a zero-copy payload's insertion point: the payload
// bytes belong between staging offset off and off of the next cut.
type codecCut struct {
	off  int
	data []byte
}

// appendCodecBatchFrame encodes msgs as one v4 frame. The frame's
// contiguous parts are built in the pooled buffer behind stage (whose
// slice is updated in place so growth stays pooled); the returned
// net.Buffers references that buffer and (for zero-copy payloads) the
// callers' payload slices, in wire order. wireLen is the total frame
// length. The segments are valid until stage is reused — callers write
// them out before returning the buffer to the pool.
func appendCodecBatchFrame(stage *[]byte, src, dstPlace int, msgs []BatchMsg, compressMin int,
	hlc uint64, hlcOn bool, tt *typeTableSender, lg *WireLedger) (segs net.Buffers, wireLen int, err error) {

	// Two passes: pass 1 resolves codecs and collects this frame's new
	// type-table announcements (the type section precedes the records
	// section, so announcements cannot be interleaved with records);
	// pass 2 writes both sections into stage, recording zero-copy cuts.
	// Zero copy is off when compression may engage: a compressed body
	// must be contiguous.
	var cuts []codecCut
	allowCuts := compressMin <= 0
	var gobScratch *bytes.Buffer

	type resolved struct {
		codec *WireCodec
		ref   uint32
	}
	res := make([]resolved, len(msgs))
	var newNames []string
	var newIDs []uint32
	for i := range msgs {
		if c := lookupWireCodec(msgs[i].Payload); c != nil {
			id, isNew := tt.assign(c.Name)
			if isNew {
				newNames = append(newNames, c.Name)
				newIDs = append(newIDs, id)
			}
			res[i] = resolved{codec: c, ref: id}
		}
	}

	raw := (*stage)[:0]
	raw = appendUvarint(raw, uint64(src))
	raw = appendUvarint(raw, uint64(len(newNames)))
	for i, name := range newNames {
		raw = appendUvarint(raw, uint64(newIDs[i]))
		raw = appendUvarint(raw, uint64(len(name)))
		raw = append(raw, name...)
	}
	raw = appendUvarint(raw, uint64(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		var t0 int64
		if lg != nil {
			t0 = wireNow()
		}
		raw = appendUvarint(raw, uint64(m.ID))
		raw = append(raw, byte(m.Class))
		raw = appendUvarint(raw, uint64(m.Bytes))
		if r := res[i]; r.codec != nil {
			raw = appendUvarint(raw, uint64(r.ref))
			if b, ok := m.Payload.([]byte); ok && allowCuts && len(b) >= codecZeroCopyMin {
				// Zero-copy cut: length prefix in the staging buffer,
				// payload shipped by reference.
				raw = appendUvarint(raw, uint64(len(b)))
				cuts = append(cuts, codecCut{off: len(raw), data: b})
			} else {
				lenAt := len(raw)
				raw = append(raw, 0, 0, 0, 0, 0) // max uvarint32 placeholder
				before := len(raw)
				raw, err = r.codec.Encode(raw, m.Payload)
				if err != nil {
					return nil, 0, fmt.Errorf("x10rt: codec %s: %w", r.codec.Name, err)
				}
				plen := len(raw) - before
				// Rewrite the placeholder with the actual uvarint and
				// close the gap.
				var vb [binary.MaxVarintLen64]byte
				vn := binary.PutUvarint(vb[:], uint64(plen))
				copy(raw[lenAt:], vb[:vn])
				copy(raw[lenAt+vn:], raw[before:])
				raw = raw[:lenAt+vn+plen]
			}
		} else {
			raw = appendUvarint(raw, 0)
			if gobScratch == nil {
				gobScratch = getBuf()
				defer putBuf(gobScratch)
			}
			gobScratch.Reset()
			if err := gob.NewEncoder(gobScratch).Encode(&gobPayload{V: m.Payload}); err != nil {
				return nil, 0, fmt.Errorf("x10rt: codec gob fallback: %w", err)
			}
			raw = appendUvarint(raw, uint64(gobScratch.Len()))
			raw = append(raw, gobScratch.Bytes()...)
		}
		if lg != nil {
			lg.RecordEncode(src, m.ID, wireNow()-t0)
		}
	}

	rawLen := len(raw)
	for _, c := range cuts {
		rawLen += len(c.data)
	}

	flags := byte(0)
	if hlcOn {
		flags |= codecFlagHLC
	}
	body := raw
	if compressMin > 0 && rawLen >= compressMin {
		// cuts are empty on this path (allowCuts was false).
		comp := getBuf()
		defer putBuf(comp)
		var vb [binary.MaxVarintLen64]byte
		comp.Write(vb[:binary.PutUvarint(vb[:], uint64(len(raw)))])
		fw := flateWriterPool.Get().(*flate.Writer)
		fw.Reset(comp)
		_, werr := fw.Write(raw)
		cerr := fw.Close()
		flateWriterPool.Put(fw)
		if werr == nil && cerr == nil && comp.Len() < len(raw) {
			flags |= batchFlagCompressed
			// Assemble into the tail of the staging array, past raw, so
			// the compressed copy does not clobber its own source.
			body = append(raw[len(raw):], comp.Bytes()...)
		}
	}
	if lg != nil {
		bodyLen := len(body)
		if flags&batchFlagCompressed == 0 {
			bodyLen = rawLen
		}
		lg.RecordBatchBody(src, dstPlace, rawLen, bodyLen)
	}

	// Assemble the frame prefix: outer header, flags, optional HLC.
	var prefix [frameHeaderSize + 1 + binary.MaxVarintLen64]byte
	p := prefix[:0]
	p = append(p, frameMagic, batchVersionCodec, 0, 0, 0, 0)
	p = append(p, flags)
	if hlcOn {
		p = appendUvarint(p, hlc)
	}
	payloadLen := len(p) - frameHeaderSize + len(body)
	if flags&batchFlagCompressed == 0 {
		payloadLen = len(p) - frameHeaderSize + rawLen
	}
	if payloadLen > MaxFrameSize {
		return nil, 0, fmt.Errorf("%w: codec batch payload %d exceeds max %d",
			ErrFrameCorrupt, payloadLen, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(p[2:6], uint32(payloadLen))

	// The prefix lives on this stack frame; it must escape into the
	// returned segments, so copy it once (13 bytes max). The body stays
	// in the staging buffer — writev makes the multi-segment frame one
	// syscall with no coalescing copy.
	head := make([]byte, len(p))
	copy(head, p)
	*stage = raw[:0] // keep any growth pooled

	segs = append(segs, head)
	if flags&batchFlagCompressed != 0 || len(cuts) == 0 {
		segs = append(segs, body)
	} else {
		prev := 0
		for _, c := range cuts {
			segs = append(segs, body[prev:c.off], c.data)
			prev = c.off
		}
		if prev < len(body) {
			segs = append(segs, body[prev:])
		}
	}
	return segs, frameHeaderSize + payloadLen, nil
}

// decodeCodecBatchPayloadLG decodes a v4 frame payload (flags byte
// included) against the connection's receive-side type table. Gob
// reports some malformed inputs by panicking; the recover converts any
// such panic into an error so a corrupt peer costs only its own
// connection. Returned []byte payloads may alias payload.
func decodeCodecBatchPayloadLG(payload []byte, tt *typeTableReceiver, lg *WireLedger, place int) (msgs []wireMsg, hlc uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			msgs, err = nil, fmt.Errorf("x10rt: codec batch decode panic: %v", r)
		}
	}()
	if len(payload) < 1 {
		return nil, 0, fmt.Errorf("%w: empty codec batch payload", ErrFrameCorrupt)
	}
	flags, body := payload[0], payload[1:]
	if flags&^byte(batchFlagCompressed|codecFlagHLC) != 0 {
		return nil, 0, fmt.Errorf("%w: unknown codec batch flags 0x%02x", ErrFrameCorrupt, flags)
	}
	if flags&codecFlagHLC != 0 {
		var n int
		hlc, n = binary.Uvarint(body)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: bad codec batch HLC", ErrFrameCorrupt)
		}
		body = body[n:]
	}
	if flags&batchFlagCompressed != 0 {
		rawLen, n := binary.Uvarint(body)
		if n <= 0 || rawLen == 0 || rawLen > MaxFrameSize {
			return nil, 0, fmt.Errorf("%w: bad compressed codec batch length", ErrFrameCorrupt)
		}
		fr := flate.NewReader(bytes.NewReader(body[n:]))
		buf := bytes.NewBuffer(make([]byte, 0, rawLen))
		if _, err := io.Copy(buf, io.LimitReader(fr, int64(rawLen)+1)); err != nil {
			return nil, 0, fmt.Errorf("%w: codec batch inflate: %v", ErrFrameCorrupt, err)
		}
		if uint64(buf.Len()) != rawLen {
			return nil, 0, fmt.Errorf("%w: codec batch inflated to %d, declared %d",
				ErrFrameCorrupt, buf.Len(), rawLen)
		}
		body = buf.Bytes()
	}

	src64, n := binary.Uvarint(body)
	if n <= 0 || src64 > 1<<24 {
		return nil, 0, fmt.Errorf("%w: bad codec batch src", ErrFrameCorrupt)
	}
	body = body[n:]
	src := int(src64)

	nNew, n := binary.Uvarint(body)
	if n <= 0 || nNew > maxTypeTableEntries {
		return nil, 0, fmt.Errorf("%w: bad type table count", ErrFrameCorrupt)
	}
	body = body[n:]
	for i := uint64(0); i < nNew; i++ {
		id, c := binary.Uvarint(body)
		if c <= 0 || id > maxTypeTableEntries {
			return nil, 0, fmt.Errorf("%w: bad type table id", ErrFrameCorrupt)
		}
		body = body[c:]
		nameLen, c := binary.Uvarint(body)
		if c <= 0 || nameLen > maxTypeNameLen || nameLen > uint64(len(body)-c) {
			return nil, 0, fmt.Errorf("%w: bad type name length", ErrFrameCorrupt)
		}
		name := string(body[c : c+int(nameLen)])
		body = body[c+int(nameLen):]
		if err := tt.bind(uint32(id), name); err != nil {
			return nil, 0, err
		}
	}

	count, n := binary.Uvarint(body)
	if n <= 0 || count == 0 || count > maxBatchCount || count > uint64(len(body)) {
		return nil, 0, fmt.Errorf("%w: bad codec batch count", ErrFrameCorrupt)
	}
	body = body[n:]
	msgs = make([]wireMsg, 0, count)
	for i := uint64(0); i < count; i++ {
		var t0 int64
		if lg != nil {
			t0 = wireNow()
		}
		id64, c := binary.Uvarint(body)
		if c <= 0 || id64 > uint64(^HandlerID(0)>>1) {
			return nil, 0, fmt.Errorf("%w: record %d handler id", ErrFrameCorrupt, i)
		}
		body = body[c:]
		if len(body) < 1 {
			return nil, 0, fmt.Errorf("%w: record %d truncated class", ErrFrameCorrupt, i)
		}
		class := Class(body[0])
		if class >= numClasses {
			return nil, 0, fmt.Errorf("%w: record %d class %d", ErrFrameCorrupt, i, class)
		}
		body = body[1:]
		mb, c := binary.Uvarint(body)
		if c <= 0 || mb > MaxFrameSize {
			return nil, 0, fmt.Errorf("%w: record %d modeled bytes", ErrFrameCorrupt, i)
		}
		body = body[c:]
		ref, c := binary.Uvarint(body)
		if c <= 0 || ref > maxTypeTableEntries {
			return nil, 0, fmt.Errorf("%w: record %d type ref", ErrFrameCorrupt, i)
		}
		body = body[c:]
		plen, c := binary.Uvarint(body)
		if c <= 0 || plen > uint64(len(body)-c) {
			return nil, 0, fmt.Errorf("%w: record %d payload length", ErrFrameCorrupt, i)
		}
		pbytes := body[c : c+int(plen)]
		body = body[c+int(plen):]

		var v any
		if ref == 0 {
			var box gobPayload
			if err := gob.NewDecoder(bytes.NewReader(pbytes)).Decode(&box); err != nil {
				return nil, 0, fmt.Errorf("x10rt: codec batch record %d gob: %w", i, err)
			}
			v = box.V
		} else {
			codec, err := tt.codec(uint32(ref))
			if err != nil {
				return nil, 0, err
			}
			var derr error
			v, derr = codec.Decode(pbytes)
			if derr != nil {
				return nil, 0, fmt.Errorf("x10rt: codec batch record %d (%s): %w", i, codec.Name, derr)
			}
		}
		m := wireMsg{Src: src, ID: HandlerID(id64), Class: class, Bytes: int(mb), Payload: v}
		if lg != nil {
			lg.RecordRecv(place, m.ID, wireNow()-t0)
		}
		msgs = append(msgs, m)
	}
	if len(body) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing codec batch bytes", ErrFrameCorrupt, len(body))
	}
	return msgs, hlc, nil
}
