package x10rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newTestChan(t *testing.T, n int, opts ...func(*ChanOptions)) *ChanTransport {
	t.Helper()
	o := ChanOptions{Places: n}
	for _, f := range opts {
		f(&o)
	}
	tr, err := NewChanTransport(o)
	if err != nil {
		t.Fatalf("NewChanTransport: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestChanBasicDelivery(t *testing.T) {
	tr := newTestChan(t, 4)
	got := make(chan [2]int, 1)
	if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
		got <- [2]int{src, payload.(int)}
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := tr.Send(1, 3, UserHandlerBase, 42, 8, DataClass); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case m := <-got:
		if m[0] != 1 || m[1] != 42 {
			t.Fatalf("got src=%d payload=%d, want 1, 42", m[0], m[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestChanSelfSend(t *testing.T) {
	tr := newTestChan(t, 1)
	done := make(chan struct{})
	if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
		close(done)
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := tr.Send(0, 0, UserHandlerBase, nil, 0, DataClass); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("self send not delivered")
	}
}

func TestChanFIFOPerLink(t *testing.T) {
	tr := newTestChan(t, 2)
	const n = 1000
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
		mu.Lock()
		got = append(got, payload.(int))
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Send(0, 1, UserHandlerBase, i, 4, DataClass); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	<-done
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery out of order at %d: got %d", i, v)
		}
	}
}

func TestChanReorderingOnlyControl(t *testing.T) {
	// With a reorder seed, control messages may be delivered out of
	// order but data messages on one link must stay FIFO.
	tr := newTestChan(t, 2, func(o *ChanOptions) { o.ReorderSeed = 12345 })
	const n = 500
	var mu sync.Mutex
	var data []int
	var ctl []int
	var wg sync.WaitGroup
	wg.Add(2 * n)
	if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
		mu.Lock()
		data = append(data, payload.(int))
		mu.Unlock()
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(UserHandlerBase+1, func(src, dst int, payload any) {
		mu.Lock()
		ctl = append(ctl, payload.(int))
		mu.Unlock()
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Send(0, 1, UserHandlerBase, i, 4, DataClass); err != nil {
			t.Fatal(err)
		}
		if err := tr.Send(0, 1, UserHandlerBase+1, i, 4, ControlClass); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	// All messages arrive exactly once.
	if len(data) != n || len(ctl) != n {
		t.Fatalf("lost messages: data=%d ctl=%d want %d", len(data), len(ctl), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range ctl {
		if seen[v] {
			t.Fatalf("duplicate control message %d", v)
		}
		seen[v] = true
	}
	reordered := false
	for i, v := range ctl {
		if v != i {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("expected control reordering with seed set; delivery was FIFO")
	}
}

func TestChanStats(t *testing.T) {
	tr := newTestChan(t, 2)
	if err := tr.Register(UserHandlerBase, func(int, int, any) {}); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats()
	for i := 0; i < 10; i++ {
		if err := tr.Send(0, 1, UserHandlerBase, nil, 100, DataClass); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := tr.Send(0, 1, UserHandlerBase, nil, 8, ControlClass); err != nil {
			t.Fatal(err)
		}
	}
	d := tr.Stats().Sub(before)
	if d.Messages[DataClass] != 10 || d.Bytes[DataClass] != 1000 {
		t.Errorf("data counters = %d msgs %d bytes, want 10, 1000",
			d.Messages[DataClass], d.Bytes[DataClass])
	}
	if d.Messages[ControlClass] != 3 || d.Bytes[ControlClass] != 24 {
		t.Errorf("control counters = %d msgs %d bytes, want 3, 24",
			d.Messages[ControlClass], d.Bytes[ControlClass])
	}
	if d.TotalMessages() != 13 || d.TotalBytes() != 1024 {
		t.Errorf("totals = %d msgs %d bytes, want 13, 1024", d.TotalMessages(), d.TotalBytes())
	}
}

func TestChanErrors(t *testing.T) {
	tr := newTestChan(t, 2)
	if err := tr.Register(UserHandlerBase, func(int, int, any) {}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(UserHandlerBase, func(int, int, any) {}); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := tr.Send(0, 5, UserHandlerBase, nil, 0, DataClass); err == nil {
		t.Error("Send to out-of-range place succeeded")
	}
	if err := tr.Send(-1, 0, UserHandlerBase, nil, 0, DataClass); err == nil {
		t.Error("Send from negative place succeeded")
	}
	if err := tr.Send(0, 1, UserHandlerBase+9, nil, 0, DataClass); err == nil {
		t.Error("Send to unregistered handler succeeded")
	}
	tr.Close()
	if err := tr.Send(0, 1, UserHandlerBase, nil, 0, DataClass); err == nil {
		t.Error("Send after Close succeeded")
	}
	if _, err := NewChanTransport(ChanOptions{Places: 0}); err == nil {
		t.Error("NewChanTransport with 0 places succeeded")
	}
}

func TestChanHandlersMaySend(t *testing.T) {
	// A handler forwarding to the next place must not deadlock; this is
	// the unbounded-mailbox contract relied on by the finish protocols.
	tr := newTestChan(t, 8)
	done := make(chan int, 1)
	if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
		hop := payload.(int)
		if hop >= 100 {
			done <- hop
			return
		}
		if err := tr.Send((src+1)%8, (src+2)%8, UserHandlerBase, hop+1, 4, DataClass); err != nil {
			t.Errorf("forward: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(0, 1, UserHandlerBase, 0, 4, DataClass); err != nil {
		t.Fatal(err)
	}
	select {
	case hops := <-done:
		if hops != 100 {
			t.Fatalf("hops = %d, want 100", hops)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("forwarding chain stalled")
	}
}

func TestChanConcurrentSenders(t *testing.T) {
	tr := newTestChan(t, 8)
	var received atomic.Int64
	if err := tr.Register(UserHandlerBase, func(int, int, any) {
		received.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	const perSender = 500
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := tr.Send(s, (s+i)%8, UserHandlerBase, i, 8, DataClass); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	tr.Quiesce()
	if got := received.Load(); got != 8*perSender {
		t.Fatalf("received %d messages, want %d", got, 8*perSender)
	}
}

func TestChanLatencyInjection(t *testing.T) {
	delay := 20 * time.Millisecond
	tr := newTestChan(t, 2, func(o *ChanOptions) {
		o.Latency = func(src, dst, bytes int, class Class) time.Duration { return delay }
	})
	got := make(chan time.Time, 1)
	if err := tr.Register(UserHandlerBase, func(int, int, any) { got <- time.Now() }); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tr.Send(0, 1, UserHandlerBase, nil, 0, DataClass); err != nil {
		t.Fatal(err)
	}
	arrived := <-got
	if e := arrived.Sub(start); e < delay {
		t.Errorf("delivered after %v, want >= %v", e, delay)
	}
}

// TestChanDeliveryIsExactlyOnce is a property test: for any batch of sends
// described by (src, dst, value) triples, every message is delivered exactly
// once regardless of reordering.
func TestChanDeliveryIsExactlyOnce(t *testing.T) {
	f := func(triples [][3]uint8, seed int64) bool {
		if len(triples) > 200 {
			triples = triples[:200]
		}
		tr, err := NewChanTransport(ChanOptions{Places: 4, ReorderSeed: seed})
		if err != nil {
			return false
		}
		defer tr.Close()
		var mu sync.Mutex
		sum := 0
		count := 0
		if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
			mu.Lock()
			sum += payload.(int)
			count++
			mu.Unlock()
		}); err != nil {
			return false
		}
		want := 0
		for i, tr3 := range triples {
			src, dst, v := int(tr3[0])%4, int(tr3[1])%4, int(tr3[2])
			class := DataClass
			if i%2 == 0 {
				class = ControlClass
			}
			if err := tr.Send(src, dst, UserHandlerBase, v, 1, class); err != nil {
				return false
			}
			want += v
		}
		tr.Quiesce()
		mu.Lock()
		defer mu.Unlock()
		return sum == want && count == len(triples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
