// Package transporttest is the cross-transport conformance suite of
// the x10rt Transport contract. Every transport implementation — and
// every decorator, since decorators must preserve the contract they
// wrap — runs the same battery through TestTransport:
//
//   - per-link FIFO ordering,
//   - concurrent multi-goroutine sends,
//   - handler re-entrancy (handlers that Send),
//   - payload-byte accounting against Stats/PlaceStats,
//   - Close-while-sending semantics.
//
// The suite is transport-shape agnostic: an in-process transport is one
// object serving every place, while a TCP mesh is one endpoint object
// per place. The Mesh adapter normalizes both.
package transporttest

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/x10rt"
)

// Payload is the message body the suite sends. It is registered as a
// gob wire type so serializing transports can carry it.
type Payload struct {
	Seq int
	Tag string
}

func init() { x10rt.RegisterWireType(Payload{}) }

// Mesh presents one transport universe to the suite.
type Mesh struct {
	// Places is the number of places in the universe (>= 2 required).
	Places int
	// Endpoint returns the Transport that place p sends from. For
	// single-object transports this is the same value for every p.
	Endpoint func(p int) x10rt.Transport
	// Register installs a handler at every place.
	Register func(id x10rt.HandlerID, h x10rt.Handler) error
	// Close tears the whole universe down. It must be idempotent at the
	// Transport level (the suite closes endpoints again afterwards).
	Close func() error
}

// Factory builds a fresh Mesh with the given number of places. The
// factory owns cleanup registration (t.Cleanup) for anything Close
// does not release.
type Factory func(t *testing.T, places int) *Mesh

// handlerID is where the suite registers its handlers, clear of the
// runtime's reserved range.
const handlerID = x10rt.UserHandlerBase + 100

// await polls until pred returns true or the deadline passes.
func await(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// flushAll pushes pending batches out on transports that buffer.
func flushAll(m *Mesh) {
	seen := map[x10rt.Transport]bool{}
	for p := 0; p < m.Places; p++ {
		ep := m.Endpoint(p)
		if seen[ep] {
			continue
		}
		seen[ep] = true
		if f, ok := ep.(x10rt.Flusher); ok {
			_ = f.Flush(-1)
		}
	}
}

// TestTransport runs the conformance battery against the factory.
func TestTransport(t *testing.T, factory Factory) {
	t.Run("PerLinkFIFO", func(t *testing.T) { testPerLinkFIFO(t, factory) })
	t.Run("ConcurrentSends", func(t *testing.T) { testConcurrentSends(t, factory) })
	t.Run("HandlerReentrancy", func(t *testing.T) { testHandlerReentrancy(t, factory) })
	t.Run("ByteAccounting", func(t *testing.T) { testByteAccounting(t, factory) })
	t.Run("CloseWhileSending", func(t *testing.T) { testCloseWhileSending(t, factory) })
}

// TestTransportDeath runs the death-semantics battery: after KillPlace,
// sends touching the dead place fail fast with the typed error, no frame
// is ever delivered twice (discarding queued frames for the victim is
// allowed; duplicating anything is not), and every DeathNotifier
// subscription observes the death exactly once per surviving place.
// Factories whose transports do not implement PlaceKiller are skipped.
func TestTransportDeath(t *testing.T, factory Factory) {
	t.Run("FailFastTypedError", func(t *testing.T) { testDeathFailFast(t, factory) })
	t.Run("NotifierOncePerSurvivor", func(t *testing.T) { testDeathNotifier(t, factory) })
	t.Run("NoDoubleDelivery", func(t *testing.T) { testDeathNoDoubleDelivery(t, factory) })
}

// endpoints returns the distinct transport objects of the mesh.
func endpoints(m *Mesh) []x10rt.Transport {
	seen := map[x10rt.Transport]bool{}
	var eps []x10rt.Transport
	for p := 0; p < m.Places; p++ {
		if ep := m.Endpoint(p); !seen[ep] {
			seen[ep] = true
			eps = append(eps, ep)
		}
	}
	return eps
}

// killAll kills place v the way a cluster's failure detector would: on
// every distinct endpoint. A single-object transport sees one call; a
// mesh of per-place endpoints sees one per endpoint. Skips the test if
// the transport has no PlaceKiller.
func killAll(t *testing.T, m *Mesh, v int) {
	t.Helper()
	for _, ep := range endpoints(m) {
		pk, ok := ep.(x10rt.PlaceKiller)
		if !ok {
			t.Skipf("transport %T does not implement PlaceKiller", ep)
		}
		if err := pk.KillPlace(v); err != nil {
			t.Fatalf("KillPlace(%d) on %T: %v", v, ep, err)
		}
	}
}

// testDeathFailFast: sends to or from the victim return *PlaceDeadError
// naming it (and unwrap to ErrPlaceDead); survivor links keep working.
func testDeathFailFast(t *testing.T, factory Factory) {
	const places, victim = 3, 1
	m := factory(t, places)
	var got atomic.Int64
	if err := m.Register(handlerID, func(src, dst int, payload any) { got.Add(1) }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	killAll(t, m, victim)

	for _, link := range [][2]int{{0, victim}, {victim, 0}} {
		err := m.Endpoint(link[0]).Send(link[0], link[1], handlerID, Payload{}, 8, x10rt.DataClass)
		if err == nil {
			t.Fatalf("Send %d->%d after kill succeeded, want fail-fast", link[0], link[1])
		}
		if !errors.Is(err, x10rt.ErrPlaceDead) {
			t.Errorf("Send %d->%d: error %v does not unwrap to ErrPlaceDead", link[0], link[1], err)
		}
		var pde *x10rt.PlaceDeadError
		if !errors.As(err, &pde) {
			t.Errorf("Send %d->%d: error %T is not *PlaceDeadError", link[0], link[1], err)
		} else if pde.Place != victim {
			t.Errorf("Send %d->%d: dead place reported as %d, want %d", link[0], link[1], pde.Place, victim)
		}
	}

	// The survivors' link is unaffected.
	if err := m.Endpoint(0).Send(0, 2, handlerID, Payload{Seq: 1}, 8, x10rt.DataClass); err != nil {
		t.Fatalf("survivor Send 0->2: %v", err)
	}
	flushAll(m)
	await(t, "survivor delivery", func() bool { return got.Load() == 1 })
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// testDeathNotifier: every subscription hears (victim, survivor) exactly
// once per surviving place, the victim never observes its own death, and
// a repeated kill is silent.
func testDeathNotifier(t *testing.T, factory Factory) {
	const places, victim = 4, 2
	m := factory(t, places)
	if err := m.Register(handlerID, func(src, dst int, payload any) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var mu sync.Mutex
	fired := map[[2]int]int{}
	eps := endpoints(m)
	for _, ep := range eps {
		dn, ok := ep.(x10rt.DeathNotifier)
		if !ok {
			t.Skipf("transport %T does not implement DeathNotifier", ep)
		}
		dn.NotifyDeath(func(dead, observer int) {
			mu.Lock()
			fired[[2]int{dead, observer}]++
			mu.Unlock()
		})
	}
	killAll(t, m, victim)

	await(t, "death notifications", func() bool {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for k, c := range fired {
			if k[0] == victim && c > 0 {
				n++
			}
		}
		return n >= places-1
	})
	// Grace period: late or duplicate callbacks would arrive now.
	time.Sleep(20 * time.Millisecond)
	// A second kill of the same place must not renotify.
	for _, ep := range eps {
		_ = ep.(x10rt.PlaceKiller).KillPlace(victim)
	}
	time.Sleep(20 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	for p := 0; p < places; p++ {
		n := fired[[2]int{victim, p}]
		switch {
		case p == victim && n != 0:
			t.Errorf("victim observed its own death %d times", n)
		case p != victim && n != 1:
			t.Errorf("survivor %d observed the death %d times, want exactly once", p, n)
		}
	}
	for k, c := range fired {
		if k[0] != victim && c != 0 {
			t.Errorf("spurious notification for non-victim place %d at %d", k[0], k[1])
		}
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// testDeathNoDoubleDelivery streams sequenced messages to a survivor and
// to the victim while the kill lands mid-stream. Contract: no (dst, seq)
// is delivered twice; every survivor-bound send that reported success is
// delivered exactly once; victim-bound frames may be discarded (queued
// ones must be) but never duplicated.
func testDeathNoDoubleDelivery(t *testing.T, factory Factory) {
	const places, victim, stream = 3, 2, 400
	m := factory(t, places)
	var mu sync.Mutex
	delivered := map[[2]int]int{} // (dst, seq) -> count
	err := m.Register(handlerID, func(src, dst int, payload any) {
		p := payload.(Payload)
		mu.Lock()
		delivered[[2]int{dst, p.Seq}]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := m.Endpoint(0).(x10rt.PlaceKiller); !ok {
		t.Skipf("transport %T does not implement PlaceKiller", m.Endpoint(0))
	}

	okToSurvivor := make([]bool, stream)
	killAt := stream / 3
	for seq := 0; seq < stream; seq++ {
		if seq == killAt {
			killAll(t, m, victim)
		}
		if err := m.Endpoint(0).Send(0, 1, handlerID, Payload{Seq: seq}, 8, x10rt.DataClass); err != nil {
			t.Fatalf("survivor Send seq %d: %v", seq, err)
		}
		okToSurvivor[seq] = true
		// Victim-bound: success before the kill, fail-fast after; either
		// way never counted on, never duplicated.
		_ = m.Endpoint(0).Send(0, victim, handlerID, Payload{Seq: seq}, 8, x10rt.DataClass)
	}
	flushAll(m)
	await(t, "survivor stream", func() bool {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for k, c := range delivered {
			if k[0] == 1 && c > 0 {
				n++
			}
		}
		return n == stream
	})

	mu.Lock()
	defer mu.Unlock()
	for k, c := range delivered {
		if c > 1 {
			t.Errorf("message (dst=%d, seq=%d) delivered %d times", k[0], k[1], c)
		}
	}
	for seq, sent := range okToSurvivor {
		if sent && delivered[[2]int{1, seq}] != 1 {
			t.Errorf("survivor-bound seq %d accepted but delivered %d times", seq, delivered[[2]int{1, seq}])
		}
	}
	for k := range delivered {
		if k[0] == victim && k[1] >= killAt {
			t.Errorf("victim received seq %d sent after the kill", k[1])
		}
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// testPerLinkFIFO sends a numbered stream down every (src, dst) link
// from a single goroutine per source and asserts arrival order per
// link. Data-class messages are used: transports may only reorder
// control traffic, and only when configured to.
func testPerLinkFIFO(t *testing.T, factory Factory) {
	const places, perLink = 3, 100
	m := factory(t, places)
	type linkKey struct{ src, dst int }
	var mu sync.Mutex
	next := map[linkKey]int{}
	var got, want atomic.Int64
	err := m.Register(handlerID, func(src, dst int, payload any) {
		p := payload.(Payload)
		k := linkKey{src, dst}
		mu.Lock()
		if p.Seq != next[k] {
			t.Errorf("link %d->%d: got seq %d, want %d", src, dst, p.Seq, next[k])
		}
		next[k] = p.Seq + 1
		mu.Unlock()
		got.Add(1)
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for src := 0; src < places; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for seq := 0; seq < perLink; seq++ {
				for dst := 0; dst < places; dst++ {
					if err := m.Endpoint(src).Send(src, dst, handlerID, Payload{Seq: seq}, 16, x10rt.DataClass); err != nil {
						t.Errorf("Send %d->%d: %v", src, dst, err)
						return
					}
					want.Add(1)
				}
			}
		}(src)
	}
	wg.Wait()
	flushAll(m)
	await(t, "all deliveries", func() bool { return got.Load() == want.Load() })
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// testConcurrentSends hammers every link from several goroutines per
// source place and checks nothing is lost or duplicated.
func testConcurrentSends(t *testing.T, factory Factory) {
	const places, goroutines, perG = 3, 4, 50
	m := factory(t, places)
	var got atomic.Int64
	if err := m.Register(handlerID, func(src, dst int, payload any) { got.Add(1) }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for src := 0; src < places; src++ {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(src, g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					dst := (src + i + g) % places
					if err := m.Endpoint(src).Send(src, dst, handlerID, Payload{Seq: i}, 8, x10rt.ControlClass); err != nil {
						t.Errorf("Send: %v", err)
						return
					}
				}
			}(src, g)
		}
	}
	wg.Wait()
	flushAll(m)
	total := int64(places * goroutines * perG)
	await(t, "all deliveries", func() bool { return got.Load() >= total })
	if n := got.Load(); n != total {
		t.Errorf("delivered %d messages, want %d", n, total)
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// testHandlerReentrancy bounces a message between two places from
// inside handlers: each delivery decrements a hop count and sends the
// payload onward. Handlers that Send must neither deadlock nor run on
// the sender's stack in a way that breaks the transport.
func testHandlerReentrancy(t *testing.T, factory Factory) {
	const hops = 40
	m := factory(t, 2)
	done := make(chan struct{})
	var once sync.Once
	err := m.Register(handlerID, func(src, dst int, payload any) {
		p := payload.(Payload)
		if p.Seq == 0 {
			once.Do(func() { close(done) })
			return
		}
		if err := m.Endpoint(dst).Send(dst, src, handlerID, Payload{Seq: p.Seq - 1}, 8, x10rt.ControlClass); err != nil {
			t.Errorf("re-entrant Send: %v", err)
			once.Do(func() { close(done) })
		}
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := m.Endpoint(0).Send(0, 1, handlerID, Payload{Seq: hops}, 8, x10rt.ControlClass); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Re-entrant sends can land in a batching queue with nothing else
	// arriving to push them out; keep nudging flushes while we wait.
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case <-done:
			if err := m.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			return
		case <-time.After(time.Millisecond):
			flushAll(m)
			if time.Now().After(deadline) {
				t.Fatal("ping-pong did not terminate")
			}
		}
	}
}

// testByteAccounting checks the accounting contract: per-class message
// and modeled-byte egress, summed over PlaceStats of every place's own
// endpoint, equals exactly what was sent; wire bytes are counted
// whenever traffic flowed; telemetry traffic stays invisible.
func testByteAccounting(t *testing.T, factory Factory) {
	const places = 3
	m := factory(t, places)
	var got atomic.Int64
	if err := m.Register(handlerID, func(src, dst int, payload any) { got.Add(1) }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := m.Register(x10rt.HandlerTelemetry, func(src, dst int, payload any) { got.Add(1) }); err != nil {
		t.Fatalf("Register telemetry: %v", err)
	}
	classes := []x10rt.Class{x10rt.DataClass, x10rt.ControlClass, x10rt.CollectiveClass}
	var wantMsgs, wantBytes [3]uint64
	var sent int64
	for src := 0; src < places; src++ {
		for dst := 0; dst < places; dst++ {
			for ci, class := range classes {
				n := 10 + 3*src + dst
				if err := m.Endpoint(src).Send(src, dst, handlerID, Payload{Seq: n}, n, class); err != nil {
					t.Fatalf("Send: %v", err)
				}
				wantMsgs[ci]++
				wantBytes[ci] += uint64(n)
				sent++
			}
			// Telemetry must not perturb any counter.
			if err := m.Endpoint(src).Send(src, dst, x10rt.HandlerTelemetry, Payload{}, 999, x10rt.ControlClass); err != nil {
				t.Fatalf("Send telemetry: %v", err)
			}
			sent++
		}
	}
	flushAll(m)
	await(t, "all deliveries", func() bool { return got.Load() == sent })

	var sum x10rt.Stats
	for p := 0; p < places; p++ {
		ps, ok := m.Endpoint(p).(x10rt.PlaceMetricSource)
		if !ok {
			t.Fatalf("endpoint %d is not a PlaceMetricSource", p)
		}
		s := ps.PlaceStats(p)
		for i := range sum.Messages {
			sum.Messages[i] += s.Messages[i]
			sum.Bytes[i] += s.Bytes[i]
		}
		sum.WireBytes += s.WireBytes
	}
	for i := range classes {
		if sum.Messages[i] != wantMsgs[i] {
			t.Errorf("class %v: %d messages accounted, want %d", classes[i], sum.Messages[i], wantMsgs[i])
		}
		if sum.Bytes[i] != wantBytes[i] {
			t.Errorf("class %v: %d bytes accounted, want %d", classes[i], sum.Bytes[i], wantBytes[i])
		}
	}
	if sum.WireBytes == 0 {
		t.Error("no wire bytes accounted for nonzero traffic")
	}
	// Wire-byte parity: the per-place egress attribution must re-sum to
	// the transport's own global wire counter. Both sides count egress
	// only (payload counters on serializing transports also cover
	// ingress, so they are checked per class above, not here), so the
	// equality holds on single-object transports — where Stats() is the
	// one global account — and on per-place-endpoint meshes, where the
	// global account is the sum over distinct endpoints.
	var globalWire uint64
	for _, ep := range endpoints(m) {
		globalWire += ep.Stats().WireBytes
	}
	if sum.WireBytes != globalWire {
		t.Errorf("wire-byte parity: Σ per-place WireBytes = %d, global Stats().WireBytes = %d",
			sum.WireBytes, globalWire)
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// testCloseWhileSending closes the universe while senders are mid
// stream: in-flight Sends may succeed or fail but must not panic,
// post-Close Sends must error, and Close must be idempotent.
func testCloseWhileSending(t *testing.T, factory Factory) {
	const places = 2
	m := factory(t, places)
	if err := m.Register(handlerID, func(src, dst int, payload any) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for src := 0; src < places; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Any error is fine once shutdown races in; panics are not.
				_ = m.Endpoint(src).Send(src, (src+1)%places, handlerID, Payload{Seq: i}, 8, x10rt.DataClass)
			}
		}(src)
	}
	time.Sleep(2 * time.Millisecond)
	if err := m.Close(); err != nil && !errors.Is(err, x10rt.ErrClosed) {
		// Transports may surface connection teardown errors here; they
		// must still finish closing, which the post-conditions check.
		t.Logf("Close during traffic: %v", err)
	}
	close(stop)
	wg.Wait()
	for p := 0; p < places; p++ {
		if err := m.Endpoint(p).Send(p, (p+1)%places, handlerID, Payload{}, 8, x10rt.DataClass); err == nil {
			t.Errorf("endpoint %d: Send after Close succeeded", p)
		}
		if err := m.Endpoint(p).Close(); err != nil {
			t.Errorf("endpoint %d: repeated Close: %v", p, err)
		}
	}
}

// ---------------------------------------------------------------------
// One-sided battery: the frame-v5 lane that lands (arena, offset, raw
// bytes) without active-message dispatch. Transports without the lane
// (no OneSidedSender/OneSidedSink) skip.

// oneSidedHandler is the flag channel for the ordering tests.
const oneSidedHandler = handlerID + 7

// TestTransportOneSided runs the one-sided battery against the factory:
// puts land and stay ordered against active messages on the same link,
// gets round-trip through transient reply windows, the remote atomics
// accumulate exactly, and dead places fail fast with the typed error.
func TestTransportOneSided(t *testing.T, factory Factory) {
	t.Run("PutOrderedVsActiveMessages", func(t *testing.T) { testOneSidedPutOrdering(t, factory) })
	t.Run("GetRoundTrip", func(t *testing.T) { testOneSidedGet(t, factory) })
	t.Run("RemoteAtomics", func(t *testing.T) { testOneSidedAtomics(t, factory) })
	t.Run("DeathFailFast", func(t *testing.T) { testOneSidedDeath(t, factory) })
}

// oneSidedMesh builds the mesh, requires the lane on every endpoint, and
// attaches one shared ArenaTable (the process-wide registry shape the
// core runtime uses).
func oneSidedMesh(t *testing.T, factory Factory, places int) (*Mesh, *x10rt.ArenaTable) {
	t.Helper()
	m := factory(t, places)
	at := x10rt.NewArenaTable()
	for _, ep := range endpoints(m) {
		snd, ok := ep.(x10rt.OneSidedSender)
		sink, ok2 := ep.(x10rt.OneSidedSink)
		if !ok || !ok2 {
			t.Skipf("transport %T has no one-sided lane", ep)
		}
		_ = snd
		sink.AttachArenas(at)
	}
	return m, at
}

// byteArena registers a []byte window (the direct-landing shape: wire
// transports read put payloads straight into it) for place p.
func byteArena(at *x10rt.ArenaTable, p int, id uint64, win []byte) {
	at.Register(p, id, &x10rt.Arena{
		Elems:    len(win),
		ElemSize: 1,
		Raw:      win,
		PutLocal: func(off int, local any) { copy(win[off:], local.([]byte)) },
		PutLE:    func(off, elems int, data []byte) { copy(win[off:off+elems], data) },
		ReadOp: func(off, elems int) (any, func([]byte) []byte) {
			snap := make([]byte, elems)
			copy(snap, win[off:off+elems])
			return snap, func(dst []byte) []byte { return append(dst, snap...) }
		},
	})
}

// u64Arena registers a []uint64 window with atomic xor/add for place p.
func u64Arena(at *x10rt.ArenaTable, p int, id uint64, win []uint64) {
	at.Register(p, id, &x10rt.Arena{
		Elems:    len(win),
		ElemSize: 8,
		PutLocal: func(off int, local any) { copy(win[off:], local.([]uint64)) },
		PutLE: func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				atomic.StoreUint64(&win[off+i], leU64(data[i*8:]))
			}
		},
		ReadOp: func(off, elems int) (any, func([]byte) []byte) {
			snap := make([]uint64, elems)
			for i := range snap {
				snap[i] = atomic.LoadUint64(&win[off+i])
			}
			return snap, func(dst []byte) []byte {
				for _, v := range snap {
					dst = appendU64(dst, v)
				}
				return dst
			}
		},
		Xor: func(idx int, val uint64) {
			for {
				old := atomic.LoadUint64(&win[idx])
				if atomic.CompareAndSwapUint64(&win[idx], old, old^val) {
					return
				}
			}
		},
		Add: func(idx int, val uint64) { atomic.AddUint64(&win[idx], val) },
	})
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// testOneSidedPutOrdering is the MP litmus shape with a one-sided data
// leg: put(i) then flag(i) as an active message on the same link. The
// flag handler (running on the destination's dispatch path, ordered
// after the landing) must never observe data older than its round.
func testOneSidedPutOrdering(t *testing.T, factory Factory) {
	const places, rounds = 2, 200
	m, at := oneSidedMesh(t, factory, places)
	win := make([]byte, 8)
	byteArena(at, 1, 1, win)

	var lastSeen atomic.Int64
	lastSeen.Store(-1)
	var stale atomic.Int64
	var got atomic.Int64
	if err := m.Register(oneSidedHandler, func(src, dst int, payload any) {
		round := int64(payload.(Payload).Seq)
		data := int64(leU64(win)) // same dispatch path as the landing: ordered
		if data < round {
			stale.Add(1)
		}
		lastSeen.Store(round)
		got.Add(1)
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}

	src := m.Endpoint(0)
	snd := src.(x10rt.OneSidedSender)
	for i := 0; i < rounds; i++ {
		data := appendU64(nil, uint64(i))
		op := &x10rt.OneSidedOp{
			Kind: x10rt.OneSidedPut, Arena: 1, Off: 0, Elems: 8,
			Data: data, Local: data, Bytes: 8,
		}
		if err := snd.SendOneSided(0, 1, op); err != nil {
			t.Fatalf("SendOneSided(round %d): %v", i, err)
		}
		if err := src.Send(0, 1, oneSidedHandler, Payload{Seq: i}, 8, x10rt.DataClass); err != nil {
			t.Fatalf("Send(flag %d): %v", i, err)
		}
	}
	flushAll(m)
	await(t, "all flags", func() bool { flushAll(m); return got.Load() == rounds })
	if n := stale.Load(); n != 0 {
		t.Errorf("%d flags observed data older than their round (one-sided put overtaken by AM)", n)
	}
}

// testOneSidedGet drives a get through a transient reply window and
// checks the requested slice arrives value-for-value.
func testOneSidedGet(t *testing.T, factory Factory) {
	const places = 2
	m, at := oneSidedMesh(t, factory, places)
	src := make([]uint64, 64)
	for i := range src {
		src[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	u64Arena(at, 1, 1, src)

	dst := make([]uint64, 16)
	reply := at.Reserve()
	// Transient reply window: unregisters once the response put lands.
	at.Register(0, reply, &x10rt.Arena{
		Elems: len(dst), ElemSize: 8, Transient: true,
		PutLocal: func(off int, local any) {
			for i, v := range local.([]uint64) {
				atomic.StoreUint64(&dst[off+i], v)
			}
		},
		PutLE: func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				atomic.StoreUint64(&dst[off+i], leU64(data[i*8:]))
			}
		},
	})

	snd := m.Endpoint(0).(x10rt.OneSidedSender)
	if err := snd.SendOneSided(0, 1, &x10rt.OneSidedOp{
		Kind: x10rt.OneSidedGet, Arena: 1, Off: 8, Elems: 16, ReplyArena: reply,
	}); err != nil {
		t.Fatalf("SendOneSided(get): %v", err)
	}
	flushAll(m)
	await(t, "get reply", func() bool {
		flushAll(m)
		return atomic.LoadUint64(&dst[15]) == src[8+15]
	})
	for i := range dst {
		if v := atomic.LoadUint64(&dst[i]); v != src[8+i] {
			t.Errorf("dst[%d] = %#x, want %#x", i, v, src[8+i])
		}
	}
}

// testOneSidedAtomics: adds and paired xors from two concurrent senders
// must accumulate exactly — the landings are read-modify-write atomic
// even when transport readers run in parallel.
func testOneSidedAtomics(t *testing.T, factory Factory) {
	const places, perSender = 3, 100
	m, at := oneSidedMesh(t, factory, places)
	win := make([]uint64, 4)
	u64Arena(at, 1, 1, win)

	var wg sync.WaitGroup
	for _, sender := range []int{0, 2} {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			snd := m.Endpoint(s).(x10rt.OneSidedSender)
			for i := 0; i < perSender; i++ {
				if err := snd.SendOneSided(s, 1, &x10rt.OneSidedOp{
					Kind: x10rt.OneSidedAdd, Arena: 1, Off: 0, Val: 1,
				}); err != nil {
					t.Errorf("add from %d: %v", s, err)
					return
				}
				// Paired xor of the same value: net zero once even.
				if err := snd.SendOneSided(s, 1, &x10rt.OneSidedOp{
					Kind: x10rt.OneSidedXor, Arena: 1, Off: 1, Val: 0xdeadbeef,
				}); err != nil {
					t.Errorf("xor from %d: %v", s, err)
					return
				}
			}
			// One batch: toggle bit i of word 2, each index twice.
			var recs []byte
			for i := 0; i < 32; i++ {
				for k := 0; k < 2; k++ {
					recs = append(recs, byte(2), 0, 0, 0)
					recs = appendU64(recs, uint64(1)<<i)
				}
			}
			if err := snd.SendOneSided(s, 1, &x10rt.OneSidedOp{
				Kind: x10rt.OneSidedXorBatch, Arena: 1, Elems: 64,
				Data: recs, Bytes: len(recs),
			}); err != nil {
				t.Errorf("xorbatch from %d: %v", s, err)
			}
		}(sender)
	}
	wg.Wait()
	flushAll(m)
	await(t, "adds accumulated", func() bool {
		flushAll(m)
		return atomic.LoadUint64(&win[0]) == 2*perSender
	})
	if v := atomic.LoadUint64(&win[1]); v != 0 {
		t.Errorf("paired xors left %#x, want 0", v)
	}
	if v := atomic.LoadUint64(&win[2]); v != 0 {
		t.Errorf("xorbatch double-toggle left %#x, want 0", v)
	}
}

// testOneSidedDeath: after KillPlace, one-sided ops touching the victim
// fail fast with the typed error and survivor links keep landing.
func testOneSidedDeath(t *testing.T, factory Factory) {
	const places, victim = 3, 1
	m, at := oneSidedMesh(t, factory, places)
	for p := 0; p < places; p++ {
		u64Arena(at, p, 1, make([]uint64, 4))
	}
	surWin := make([]uint64, 4)
	u64Arena(at, 2, 2, surWin)

	killAll(t, m, victim)

	snd0 := m.Endpoint(0).(x10rt.OneSidedSender)
	err := snd0.SendOneSided(0, victim, &x10rt.OneSidedOp{
		Kind: x10rt.OneSidedAdd, Arena: 1, Off: 0, Val: 1,
	})
	var pde *x10rt.PlaceDeadError
	if !errors.As(err, &pde) || pde.Place != victim {
		t.Errorf("op to victim: err = %v, want *PlaceDeadError{%d}", err, victim)
	}
	if !errors.Is(err, x10rt.ErrPlaceDead) {
		t.Errorf("op to victim does not unwrap to ErrPlaceDead: %v", err)
	}
	sndV := m.Endpoint(victim).(x10rt.OneSidedSender)
	if err := sndV.SendOneSided(victim, 2, &x10rt.OneSidedOp{
		Kind: x10rt.OneSidedAdd, Arena: 2, Off: 0, Val: 1,
	}); !errors.Is(err, x10rt.ErrPlaceDead) {
		t.Errorf("op from victim: err = %v, want ErrPlaceDead", err)
	}
	if err := snd0.SendOneSided(0, 2, &x10rt.OneSidedOp{
		Kind: x10rt.OneSidedAdd, Arena: 2, Off: 0, Val: 7,
	}); err != nil {
		t.Fatalf("survivor op: %v", err)
	}
	flushAll(m)
	await(t, "survivor landing", func() bool {
		flushAll(m)
		return atomic.LoadUint64(&surWin[0]) == 7
	})
}
