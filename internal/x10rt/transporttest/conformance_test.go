package transporttest_test

import (
	"testing"
	"time"

	"apgas/internal/chaos"
	"apgas/internal/x10rt"
	"apgas/internal/x10rt/transporttest"
)

// singleObjectMesh adapts a transport whose one value serves every
// place (chan and any decorator over it).
func singleObjectMesh(places int, tr x10rt.Transport) *transporttest.Mesh {
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return tr },
		Register: tr.Register,
		Close:    tr.Close,
	}
}

func chanFactory(t *testing.T, places int) *transporttest.Mesh {
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

func tcpFactory(t *testing.T, places int) *transporttest.Mesh {
	mesh, err := x10rt.NewLocalTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range mesh {
			tr.Close()
		}
	})
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return mesh[p] },
		Register: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range mesh {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
		Close: func() error {
			var first error
			for _, tr := range mesh {
				if err := tr.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

func countingFactory(t *testing.T, places int) *transporttest.Mesh {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	tr := x10rt.NewCountingTransport(inner)
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

func batchingFactory(t *testing.T, places int) *transporttest.Mesh {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	tr := x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
		MaxDelay:  100 * time.Microsecond,
		MaxFrames: 16,
	})
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

// batchingTCPFactory stacks the wrapper over a serializing transport,
// exercising the SendBatch fast path under the same battery.
func batchingTCPFactory(t *testing.T, places int) *transporttest.Mesh {
	mesh, err := x10rt.NewLocalTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]*x10rt.BatchingTransport, places)
	for p, tr := range mesh {
		wrapped[p] = x10rt.NewBatchingTransport(tr, x10rt.BatchOptions{
			MaxDelay:  100 * time.Microsecond,
			MaxFrames: 16,
		})
	}
	t.Cleanup(func() {
		for _, tr := range wrapped {
			tr.Close()
		}
	})
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return wrapped[p] },
		Register: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range wrapped {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
		Close: func() error {
			var first error
			for _, tr := range wrapped {
				if err := tr.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

func chaosFactory(t *testing.T, places int) *transporttest.Mesh {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	// Zero fault probabilities: the wrapper's plumbing (link walk,
	// virtual clock, hold machinery) is in the path, the faults are
	// not, so the base contract must hold exactly.
	tr := chaos.Wrap(inner, chaos.Options{Seed: 1})
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

func TestConformanceChan(t *testing.T)     { transporttest.TestTransport(t, chanFactory) }
func TestConformanceTCP(t *testing.T)      { transporttest.TestTransport(t, tcpFactory) }
func TestConformanceCounting(t *testing.T) { transporttest.TestTransport(t, countingFactory) }
func TestConformanceBatching(t *testing.T) { transporttest.TestTransport(t, batchingFactory) }
func TestConformanceBatchingTCP(t *testing.T) {
	transporttest.TestTransport(t, batchingTCPFactory)
}
func TestConformanceChaos(t *testing.T) { transporttest.TestTransport(t, chaosFactory) }

// The death battery runs against every transport shape: after KillPlace
// the sends fail fast and typed, frames are never duplicated, and death
// notifications fire exactly once per survivor.
func TestDeathChan(t *testing.T)     { transporttest.TestTransportDeath(t, chanFactory) }
func TestDeathTCP(t *testing.T)      { transporttest.TestTransportDeath(t, tcpFactory) }
func TestDeathCounting(t *testing.T) { transporttest.TestTransportDeath(t, countingFactory) }
func TestDeathBatching(t *testing.T) { transporttest.TestTransportDeath(t, batchingFactory) }
func TestDeathBatchingTCP(t *testing.T) {
	transporttest.TestTransportDeath(t, batchingTCPFactory)
}
func TestDeathChaos(t *testing.T) { transporttest.TestTransportDeath(t, chaosFactory) }
