package transporttest_test

import (
	"testing"
	"time"

	"apgas/internal/chaos"
	"apgas/internal/x10rt"
	"apgas/internal/x10rt/transporttest"
)

// singleObjectMesh adapts a transport whose one value serves every
// place (chan and any decorator over it).
func singleObjectMesh(places int, tr x10rt.Transport) *transporttest.Mesh {
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return tr },
		Register: tr.Register,
		Close:    tr.Close,
	}
}

func chanFactory(t *testing.T, places int) *transporttest.Mesh {
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

func tcpFactory(t *testing.T, places int) *transporttest.Mesh {
	mesh, err := x10rt.NewLocalTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range mesh {
			tr.Close()
		}
	})
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return mesh[p] },
		Register: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range mesh {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
		Close: func() error {
			var first error
			for _, tr := range mesh {
				if err := tr.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

func countingFactory(t *testing.T, places int) *transporttest.Mesh {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	tr := x10rt.NewCountingTransport(inner)
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

func batchingFactory(t *testing.T, places int) *transporttest.Mesh {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	tr := x10rt.NewBatchingTransport(inner, x10rt.BatchOptions{
		MaxDelay:  100 * time.Microsecond,
		MaxFrames: 16,
	})
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

// batchingTCPFactory stacks the wrapper over a serializing transport,
// exercising the SendBatch fast path under the same battery.
func batchingTCPFactory(t *testing.T, places int) *transporttest.Mesh {
	mesh, err := x10rt.NewLocalTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]*x10rt.BatchingTransport, places)
	for p, tr := range mesh {
		wrapped[p] = x10rt.NewBatchingTransport(tr, x10rt.BatchOptions{
			MaxDelay:  100 * time.Microsecond,
			MaxFrames: 16,
		})
	}
	t.Cleanup(func() {
		for _, tr := range wrapped {
			tr.Close()
		}
	})
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return wrapped[p] },
		Register: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range wrapped {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
		Close: func() error {
			var first error
			for _, tr := range wrapped {
				if err := tr.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

func chaosFactory(t *testing.T, places int) *transporttest.Mesh {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	// Zero fault probabilities: the wrapper's plumbing (link walk,
	// virtual clock, hold machinery) is in the path, the faults are
	// not, so the base contract must hold exactly.
	tr := chaos.Wrap(inner, chaos.Options{Seed: 1})
	t.Cleanup(func() { tr.Close() })
	return singleObjectMesh(places, tr)
}

func TestConformanceChan(t *testing.T)     { transporttest.TestTransport(t, chanFactory) }
func TestConformanceTCP(t *testing.T)      { transporttest.TestTransport(t, tcpFactory) }
func TestConformanceCounting(t *testing.T) { transporttest.TestTransport(t, countingFactory) }
func TestConformanceBatching(t *testing.T) { transporttest.TestTransport(t, batchingFactory) }
func TestConformanceBatchingTCP(t *testing.T) {
	transporttest.TestTransport(t, batchingTCPFactory)
}
func TestConformanceChaos(t *testing.T) { transporttest.TestTransport(t, chaosFactory) }

// The death battery runs against every transport shape: after KillPlace
// the sends fail fast and typed, frames are never duplicated, and death
// notifications fire exactly once per survivor.
func TestDeathChan(t *testing.T)     { transporttest.TestTransportDeath(t, chanFactory) }
func TestDeathTCP(t *testing.T)      { transporttest.TestTransportDeath(t, tcpFactory) }
func TestDeathCounting(t *testing.T) { transporttest.TestTransportDeath(t, countingFactory) }
func TestDeathBatching(t *testing.T) { transporttest.TestTransportDeath(t, batchingFactory) }
func TestDeathBatchingTCP(t *testing.T) {
	transporttest.TestTransportDeath(t, batchingTCPFactory)
}
func TestDeathChaos(t *testing.T) { transporttest.TestTransportDeath(t, chaosFactory) }

// codecTCPFactory is the TCP mesh with the v4 binary codec negotiated on
// every connection: the same conformance battery must hold bit-for-bit
// when frames carry type-table handshakes and codec payloads.
func codecTCPFactory(t *testing.T, places int) *transporttest.Mesh {
	mesh, err := x10rt.NewLocalCodecTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range mesh {
			tr.Close()
		}
	})
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return mesh[p] },
		Register: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range mesh {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
		Close: func() error {
			var first error
			for _, tr := range mesh {
				if err := tr.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

// batchingCodecTCPFactory stacks the batching wrapper over the codec TCP
// mesh: coalesced v4 frames with per-connection type tables.
func batchingCodecTCPFactory(t *testing.T, places int) *transporttest.Mesh {
	mesh, err := x10rt.NewLocalCodecTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]*x10rt.BatchingTransport, places)
	for p, tr := range mesh {
		wrapped[p] = x10rt.NewBatchingTransport(tr, x10rt.BatchOptions{
			MaxDelay:  100 * time.Microsecond,
			MaxFrames: 16,
		})
	}
	t.Cleanup(func() {
		for _, tr := range wrapped {
			tr.Close()
		}
	})
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return wrapped[p] },
		Register: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range wrapped {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
		Close: func() error {
			var first error
			for _, tr := range wrapped {
				if err := tr.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

// chaosCodecTCPFactory wraps the codec TCP mesh in the chaos decorator
// (zero fault probabilities): one-sided and codec frames must pass
// through the fault plumbing untouched and without consuming fault-
// stream sequence numbers.
func chaosCodecTCPFactory(t *testing.T, places int) *transporttest.Mesh {
	mesh, err := x10rt.NewLocalCodecTCPMesh(places)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]*chaos.Transport, places)
	for p, tr := range mesh {
		wrapped[p] = chaos.Wrap(tr, chaos.Options{Seed: 1})
	}
	t.Cleanup(func() {
		for _, tr := range wrapped {
			tr.Close()
		}
	})
	return &transporttest.Mesh{
		Places:   places,
		Endpoint: func(p int) x10rt.Transport { return wrapped[p] },
		Register: func(id x10rt.HandlerID, h x10rt.Handler) error {
			for _, tr := range wrapped {
				if err := tr.Register(id, h); err != nil {
					return err
				}
			}
			return nil
		},
		Close: func() error {
			var first error
			for _, tr := range wrapped {
				if err := tr.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

func TestConformanceCodecTCP(t *testing.T) { transporttest.TestTransport(t, codecTCPFactory) }
func TestConformanceBatchingCodecTCP(t *testing.T) {
	transporttest.TestTransport(t, batchingCodecTCPFactory)
}

func TestDeathCodecTCP(t *testing.T) { transporttest.TestTransportDeath(t, codecTCPFactory) }
func TestDeathBatchingCodecTCP(t *testing.T) {
	transporttest.TestTransportDeath(t, batchingCodecTCPFactory)
}

// The one-sided battery runs against every transport shape with the
// lane: raw chan, plain and codec TCP, the batching and counting
// decorators, and chaos over both chan and codec TCP.
func TestOneSidedChan(t *testing.T)     { transporttest.TestTransportOneSided(t, chanFactory) }
func TestOneSidedTCP(t *testing.T)      { transporttest.TestTransportOneSided(t, tcpFactory) }
func TestOneSidedCodecTCP(t *testing.T) { transporttest.TestTransportOneSided(t, codecTCPFactory) }
func TestOneSidedCounting(t *testing.T) { transporttest.TestTransportOneSided(t, countingFactory) }
func TestOneSidedBatching(t *testing.T) { transporttest.TestTransportOneSided(t, batchingFactory) }
func TestOneSidedBatchingCodecTCP(t *testing.T) {
	transporttest.TestTransportOneSided(t, batchingCodecTCPFactory)
}
func TestOneSidedChaos(t *testing.T) { transporttest.TestTransportOneSided(t, chaosFactory) }
func TestOneSidedChaosCodecTCP(t *testing.T) {
	transporttest.TestTransportOneSided(t, chaosCodecTCPFactory)
}
