package x10rt

import (
	"sync"
	"testing"
	"time"

	"apgas/internal/obs"
)

// waitCount polls until fn() == want or the deadline passes.
func waitCount(t *testing.T, want int, fn func() int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fn() != want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d messages, want %d", fn(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireLedgerNilSafe pins the overhead contract: every record method
// and Snapshot must be callable on a nil ledger (the disabled state).
func TestWireLedgerNilSafe(t *testing.T) {
	var lg *WireLedger
	lg.RecordSend(0, 1, UserHandlerBase, 10)
	lg.RecordWire(0, 1, 10)
	lg.RecordEncode(0, UserHandlerBase, 5)
	lg.RecordRecv(1, UserHandlerBase, 5)
	lg.RecordBatchBody(0, 1, 10, 8)
	lg.RecordQueueWait(0, 1, 100)
	if s := lg.Snapshot(); len(s.Handlers) != 0 || len(s.Links) != 0 {
		t.Fatalf("nil ledger snapshot = %+v", s)
	}
	if lg.NumPlaces() != 0 {
		t.Fatal("nil ledger NumPlaces != 0")
	}
}

// TestWireLedgerChanSumEquality checks the core sum-equality invariant
// on the in-process transport: Σ per-handler payload bytes equals the
// transport's TotalBytes and Σ per-link wire bytes equals WireBytes —
// and telemetry traffic is invisible to both.
func TestWireLedgerChanSumEquality(t *testing.T) {
	const places = 4
	tr, err := NewChanTransport(ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	o := obs.New()
	lg := NewWireLedger(places, o.Place)
	tr.AttachWireLedger(lg)

	tr.Register(UserHandlerBase, func(src, dst int, payload any) {})
	tr.Register(UserHandlerBase+1, func(src, dst int, payload any) {})
	tr.Register(HandlerTelemetry, func(src, dst int, payload any) {})

	for src := 0; src < places; src++ {
		for dst := 0; dst < places; dst++ {
			for k := 0; k <= src; k++ {
				id := UserHandlerBase + HandlerID(k%2)
				if err := tr.Send(src, dst, id, nil, 10+src, Class(k%3)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Send(src, dst, HandlerTelemetry, nil, 999, ControlClass); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr.Quiesce()

	snap := lg.Snapshot()
	stats := tr.Stats()
	if got, want := snap.TotalPayloadBytes(), stats.TotalBytes(); got != want {
		t.Errorf("Σ handler payload bytes = %d, want TotalBytes %d", got, want)
	}
	if got, want := snap.TotalWireBytes(), stats.WireBytes; got != want {
		t.Errorf("Σ link wire bytes = %d, want WireBytes %d", got, want)
	}
	var msgs, recv uint64
	for _, h := range snap.Handlers {
		if h.ID == HandlerTelemetry {
			t.Error("telemetry traffic leaked into the ledger")
		}
		msgs += h.Msgs
		recv += h.RecvMsgs
	}
	if want := stats.TotalMessages(); msgs != want || recv != want {
		t.Errorf("ledger msgs=%d recv=%d, want %d", msgs, recv, want)
	}
	// The accounts are live obs counters in the sender's place registry.
	s1 := o.Place(1).Snapshot()
	if s1.Counter("x10rt.h64.msgs") == 0 {
		t.Error("x10rt.h64.msgs missing from place 1 registry")
	}
	if s1.Counter("x10rt.link.1-0.wire") == 0 {
		t.Error("x10rt.link.1-0.wire missing from place 1 registry")
	}
	if o.Place(0).Snapshot().Counter("x10rt.link.1-0.wire") != 0 {
		t.Error("link counters must live in the sender's registry only")
	}
}

// TestWireLedgerTCPSumEquality checks sum-equality on the serializing
// transport, where wire bytes are real encoded frame bytes, and that
// encode/decode nanoseconds are attributed.
func TestWireLedgerTCPSumEquality(t *testing.T) {
	const places = 3
	mesh := newTestMesh(t, places)
	o := obs.New()
	lg := NewWireLedger(places, o.Place)
	var mu sync.Mutex
	got := 0
	for _, tr := range mesh {
		tr.AttachWireLedger(lg)
		if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
			mu.Lock()
			got++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}

	sent := 0
	for src := 0; src < places; src++ {
		for dst := 0; dst < places; dst++ { // includes self-sends
			for k := 0; k < 5; k++ {
				p := wirePayload{Value: 100*src + dst, Tag: "wire"}
				if err := mesh[src].Send(src, dst, UserHandlerBase, p, 32, DataClass); err != nil {
					t.Fatal(err)
				}
				sent++
			}
		}
	}
	waitCount(t, sent, func() int { mu.Lock(); defer mu.Unlock(); return got })

	// TCP's global Stats count ingress too; the ledger is egress
	// accounting, so the sum-equality reference is Σ PlaceStats.
	var stats Stats
	for p, tr := range mesh {
		s := tr.PlaceStats(p)
		for i := range stats.Bytes {
			stats.Messages[i] += s.Messages[i]
			stats.Bytes[i] += s.Bytes[i]
		}
		stats.WireBytes += s.WireBytes
	}
	snap := lg.Snapshot()
	if got, want := snap.TotalPayloadBytes(), stats.TotalBytes(); got != want {
		t.Errorf("Σ handler payload bytes = %d, want %d", got, want)
	}
	if got, want := snap.TotalWireBytes(), stats.WireBytes; got != want {
		t.Errorf("Σ link wire bytes = %d, want %d", got, want)
	}
	var encNs, decNs uint64
	for _, h := range snap.Handlers {
		encNs += h.EncNs
		decNs += h.DecNs
	}
	if encNs == 0 {
		t.Error("no encode ns attributed on a serializing transport")
	}
	if decNs == 0 {
		t.Error("no decode ns attributed on a serializing transport")
	}
}

// TestWireLedgerBatchingTCP checks attribution through the batching
// decorator over TCP: per-link wire bytes reflect batch frames (sum
// still equals the inner transport's WireBytes), queue wait and batch
// counts appear, and compression accounting keeps comp <= raw.
func TestWireLedgerBatchingTCP(t *testing.T) {
	const places = 2
	mesh := newTestMesh(t, places)
	o := obs.New()
	lg := NewWireLedger(places, o.Place)
	var mu sync.Mutex
	got := 0
	batched := make([]*BatchingTransport, places)
	for p, tr := range mesh {
		b := NewBatchingTransport(tr, BatchOptions{
			MaxDelay:    50 * time.Millisecond,
			MaxFrames:   16,
			CompressMin: 64, // small enough that batch bodies qualify
		})
		batched[p] = b
		defer b.Close()
		b.AttachWireLedger(lg)
		if err := b.Register(UserHandlerBase, func(src, dst int, payload any) {
			mu.Lock()
			got++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}

	const n = 40
	for k := 0; k < n; k++ {
		p := wirePayload{Value: k, Tag: "compressible compressible compressible"}
		if err := batched[0].Send(0, 1, UserHandlerBase, p, 64, DataClass); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched[0].Flush(0); err != nil {
		t.Fatal(err)
	}
	waitCount(t, n, func() int { mu.Lock(); defer mu.Unlock(); return got })

	snap := lg.Snapshot()
	if got, want := snap.TotalWireBytes(), mesh[0].Stats().WireBytes+mesh[1].Stats().WireBytes; got != want {
		t.Errorf("Σ link wire bytes = %d, want %d", got, want)
	}
	var link *WireLinkStat
	for i := range snap.Links {
		if snap.Links[i].Src == 0 && snap.Links[i].Dst == 1 {
			link = &snap.Links[i]
		}
	}
	if link == nil {
		t.Fatal("no 0->1 link account")
	}
	if link.Msgs != n {
		t.Errorf("link msgs = %d, want %d", link.Msgs, n)
	}
	if link.Batches == 0 {
		t.Error("no batch flushes recorded")
	}
	if link.Batches >= n {
		t.Errorf("batches = %d: batching collapsed to one message per flush", link.Batches)
	}
	if link.Raw == 0 || link.Comp == 0 || link.Comp > link.Raw {
		t.Errorf("compression accounting raw=%d comp=%d", link.Raw, link.Comp)
	}
	// Batch frames amortize headers: wire bytes must undercut one frame
	// per message, and compressed bodies must have won here.
	if link.Wire >= link.Raw {
		t.Errorf("wire=%d >= raw=%d: compression recorded but not realized", link.Wire, link.Raw)
	}
}

// TestWireLedgerDecoratorForwarding checks AttachWireLedger pierces the
// counting decorator and reaches the inner transport.
func TestWireLedgerDecoratorForwarding(t *testing.T) {
	inner, err := NewChanTransport(ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewCountingTransport(inner)
	defer tr.Close()
	lg := NewWireLedger(2, nil)
	tr.AttachWireLedger(lg)
	tr.Register(UserHandlerBase, func(src, dst int, payload any) {})
	if err := tr.Send(0, 1, UserHandlerBase, nil, 7, DataClass); err != nil {
		t.Fatal(err)
	}
	inner.Quiesce()
	snap := lg.Snapshot()
	if snap.TotalPayloadBytes() != 7 || snap.TotalWireBytes() != 7 {
		t.Errorf("ledger not attached through decorator: %+v", snap)
	}
}
