package x10rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file exercises the TCP transport under protocol-shaped load: a
// miniature SPMD-style termination protocol implemented purely with
// registered active messages and gob payloads — the way a cross-process
// deployment of the runtime would talk, where closures cannot travel.

type workMsg struct {
	Hops int
	Ring int
}

type doneMsg struct {
	Count int
}

func init() {
	RegisterWireType(workMsg{})
	RegisterWireType(doneMsg{})
}

// TestTCPTerminationProtocol runs R rings of hop-limited token forwarding
// across a 4-endpoint mesh; endpoint 0 plays the finish root, counting one
// completion message per ring — the FINISH_SPMD shape over real sockets.
func TestTCPTerminationProtocol(t *testing.T) {
	const places, rings, hops = 4, 8, 12
	mesh := newTestMesh(t, places)

	var done atomic.Int64
	finished := make(chan struct{})
	var once sync.Once

	for i, tr := range mesh {
		i, tr := i, tr
		// Work handler: forward the token or report completion.
		if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
			m := payload.(workMsg)
			if m.Hops == 0 {
				if err := tr.Send(i, 0, UserHandlerBase+1, doneMsg{Count: 1}, 8, ControlClass); err != nil {
					t.Errorf("done send: %v", err)
				}
				return
			}
			next := (i + 1 + m.Ring) % places
			if err := tr.Send(i, next, UserHandlerBase,
				workMsg{Hops: m.Hops - 1, Ring: m.Ring}, 16, DataClass); err != nil {
				t.Errorf("forward: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		// Completion handler (only used at endpoint 0).
		if err := tr.Register(UserHandlerBase+1, func(src, dst int, payload any) {
			m := payload.(doneMsg)
			if done.Add(int64(m.Count)) == rings {
				once.Do(func() { close(finished) })
			}
		}); err != nil {
			t.Fatal(err)
		}
	}

	for r := 0; r < rings; r++ {
		start := (r + 1) % places
		if err := mesh[0].Send(0, start, UserHandlerBase,
			workMsg{Hops: hops, Ring: r}, 16, DataClass); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-finished:
	case <-time.After(15 * time.Second):
		t.Fatalf("termination protocol stalled: %d/%d rings done", done.Load(), rings)
	}
	if done.Load() != rings {
		t.Fatalf("done = %d, want %d", done.Load(), rings)
	}
}

// TestTCPHighVolume pushes enough messages through one link to cross
// buffer boundaries.
func TestTCPHighVolume(t *testing.T) {
	mesh := newTestMesh(t, 2)
	const n = 5000
	var got atomic.Int64
	doneCh := make(chan struct{})
	if err := mesh[1].Register(UserHandlerBase, func(src, dst int, payload any) {
		if got.Add(1) == n {
			close(doneCh)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := mesh[0].Send(0, 1, UserHandlerBase, wirePayload{Value: i}, 64, DataClass); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("received %d/%d", got.Load(), n)
	}
}
