package x10rt

import (
	"sync"
	"testing"
	"time"
)

type wirePayload struct {
	Value int
	Tag   string
}

func init() {
	RegisterWireType(wirePayload{})
}

func newTestMesh(t *testing.T, n int) []*TCPTransport {
	t.Helper()
	mesh, err := NewLocalTCPMesh(n)
	if err != nil {
		t.Fatalf("NewLocalTCPMesh: %v", err)
	}
	t.Cleanup(func() {
		for _, tr := range mesh {
			tr.Close()
		}
	})
	return mesh
}

func TestTCPBasicDelivery(t *testing.T) {
	mesh := newTestMesh(t, 3)
	got := make(chan wirePayload, 1)
	for _, tr := range mesh {
		if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
			got <- payload.(wirePayload)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mesh[0].Send(0, 2, UserHandlerBase, wirePayload{Value: 7, Tag: "hi"}, 16, DataClass); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case p := <-got:
		if p.Value != 7 || p.Tag != "hi" {
			t.Fatalf("payload = %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestTCPSelfSend(t *testing.T) {
	mesh := newTestMesh(t, 2)
	got := make(chan int, 1)
	if err := mesh[1].Register(UserHandlerBase, func(src, dst int, payload any) {
		got <- payload.(wirePayload).Value
	}); err != nil {
		t.Fatal(err)
	}
	if err := mesh[1].Send(1, 1, UserHandlerBase, wirePayload{Value: 9}, 8, ControlClass); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("value = %d, want 9", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self-send not delivered")
	}
}

func TestTCPFIFO(t *testing.T) {
	mesh := newTestMesh(t, 2)
	const n = 200
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	if err := mesh[1].Register(UserHandlerBase, func(src, dst int, payload any) {
		mu.Lock()
		got = append(got, payload.(wirePayload).Value)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := mesh[0].Send(0, 1, UserHandlerBase, wirePayload{Value: i}, 8, DataClass); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestTCPPingPong(t *testing.T) {
	mesh := newTestMesh(t, 2)
	done := make(chan struct{})
	for i, tr := range mesh {
		i, tr := i, tr
		if err := tr.Register(UserHandlerBase, func(src, dst int, payload any) {
			v := payload.(wirePayload).Value
			if v >= 20 {
				close(done)
				return
			}
			if err := tr.Send(i, src, UserHandlerBase, wirePayload{Value: v + 1}, 8, DataClass); err != nil {
				t.Errorf("pong: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mesh[0].Send(0, 1, UserHandlerBase, wirePayload{Value: 0}, 8, DataClass); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ping-pong stalled")
	}
}

func TestTCPErrors(t *testing.T) {
	mesh := newTestMesh(t, 2)
	if err := mesh[0].Register(UserHandlerBase, func(int, int, any) {}); err != nil {
		t.Fatal(err)
	}
	if err := mesh[0].Send(1, 0, UserHandlerBase, nil, 0, DataClass); err == nil {
		t.Error("send with wrong src succeeded")
	}
	if err := mesh[0].Send(0, 7, UserHandlerBase, nil, 0, DataClass); err == nil {
		t.Error("send to out-of-range dst succeeded")
	}
	mesh[0].Close()
	if err := mesh[0].Send(0, 1, UserHandlerBase, wirePayload{}, 0, DataClass); err == nil {
		t.Error("send after close succeeded")
	}
	if err := mesh[0].Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPNumPlacesAndAddr(t *testing.T) {
	mesh := newTestMesh(t, 4)
	for _, tr := range mesh {
		if tr.NumPlaces() != 4 {
			t.Fatalf("NumPlaces = %d, want 4", tr.NumPlaces())
		}
		if tr.Addr() == "" {
			t.Fatal("empty Addr")
		}
	}
}
