package x10rt

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"apgas/internal/obs"
)

// BatchOptions configures a BatchingTransport.
type BatchOptions struct {
	// MaxDelay bounds how long a queued message may wait before its
	// batch is flushed, and doubles as the idle threshold: a send on a
	// link that has been quiet for at least MaxDelay flushes
	// immediately (batch of one) instead of waiting for company.
	// Default 200µs.
	MaxDelay time.Duration

	// MaxFrames flushes a link once this many messages are queued.
	// Default 64.
	MaxFrames int

	// MaxBytes flushes a link once its queued modeled bytes reach this.
	// Default 64 KiB.
	MaxBytes int

	// CompressMin enables transparent compression of batch payloads at
	// least this many encoded bytes long, when the underlying transport
	// serializes (BatchSender). 0 disables compression.
	CompressMin int

	// Now, when non-nil, replaces the wall clock for flush decisions
	// (nanoseconds, monotonic). The chaos harness passes its virtual
	// clock here so timing predicates are functions of simulated, not
	// host, time.
	Now func() int64

	// FlushOnStall makes the background flusher treat a stalled clock —
	// Now unchanged since its previous tick — as aging every non-empty
	// queue. A virtual clock that only advances on message events
	// freezes the moment the whole system blocks on a queued batch,
	// and with it both flush predicates; this restores liveness in
	// wall time without touching per-link send order, so replays stay
	// byte-identical. Pointless (and off) with a wall clock.
	FlushOnStall bool
}

func (o *BatchOptions) fill() {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 200 * time.Microsecond
	}
	if o.MaxFrames <= 0 {
		o.MaxFrames = 64
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 10
	}
	if o.Now == nil {
		start := time.Now()
		o.Now = func() int64 { return int64(time.Since(start)) }
	}
}

// flushReason labels why a batch left its queue, for the flush-reason
// counters.
type flushReason uint8

const (
	flushIdle flushReason = iota // link was idle; latency wins
	flushSize                    // frame or byte threshold reached
	flushAged                    // background flusher found an aged queue
	flushExplicit                // Flush / Quiesce / Close forced it
	numFlushReasons
)

// batchMetrics are the wrapper's own always-on metrics, registered
// under x10rt.batch.* when a registry attaches. The traffic counters
// proper (x10rt.msgs.*, x10rt.bytes.*) stay with the inner transport:
// batching changes how messages travel, not how many there are.
type batchMetrics struct {
	batches obs.Counter                 // batches forwarded
	msgs    obs.Counter                 // messages carried by those batches
	reasons [numFlushReasons]obs.Counter
	frames  obs.Histogram // messages per batch
	bytes   obs.Histogram // modeled bytes per batch
	delay   obs.Histogram // ns from first enqueue to flush

	// qdepth/qbytes gauge the flusher's backpressure: total queued
	// messages and modeled bytes across every link, sampled by the
	// background flusher on each tick. A persistently high value names
	// batching (not the inner wire) as where messages are waiting; the
	// wire ledger's per-link qwait_ns then says on which link.
	qdepth obs.Gauge
	qbytes obs.Gauge
}

func (m *batchMetrics) attach(r *obs.Registry) {
	r.RegisterCounter("x10rt.batch.batches", &m.batches)
	r.RegisterCounter("x10rt.batch.msgs", &m.msgs)
	r.RegisterCounter("x10rt.batch.flush.idle", &m.reasons[flushIdle])
	r.RegisterCounter("x10rt.batch.flush.size", &m.reasons[flushSize])
	r.RegisterCounter("x10rt.batch.flush.aged", &m.reasons[flushAged])
	r.RegisterCounter("x10rt.batch.flush.explicit", &m.reasons[flushExplicit])
	r.RegisterHistogram("x10rt.batch.frames", &m.frames)
	r.RegisterHistogram("x10rt.batch.bytes", &m.bytes)
	r.RegisterHistogram("x10rt.batch.flush_ns", &m.delay)
	r.RegisterGauge("x10rt.batch.qdepth", &m.qdepth)
	r.RegisterGauge("x10rt.batch.qbytes", &m.qbytes)
}

// batchLink is the send queue of one (src, dst) link. Two locks split
// its roles: mu guards the queue and is only ever held briefly; sendMu
// serializes forwarding to the inner transport so concurrent flushes
// cannot interleave two batches of the same link, which would break
// per-link FIFO. Lock order: sendMu before mu. The inner transport
// never runs handlers on the sender's goroutine (the reentrancy
// invariant), so holding sendMu across inner sends cannot re-enter.
type batchLink struct {
	sendMu sync.Mutex

	mu      sync.Mutex
	q       []BatchMsg
	qBytes  int
	firstNs int64 // Now() when the oldest queued message arrived
	lastNs  int64 // Now() of the most recent send on this link
}

// BatchingTransport coalesces small sends into per-link batches before
// they reach the wrapped transport. It implements the paper's
// message-aggregation discipline (§3.3: coalescing control traffic so
// fine-grained finish bookkeeping does not consume the interconnect)
// as a decorator, so every transport — chan, netsim-shaped chan, TCP,
// chaos-wrapped — gets identical semantics.
//
// Flush policy is adaptive: a send on an idle link (no traffic for
// MaxDelay) flushes immediately, keeping latency at the unbatched
// floor when there is nothing to coalesce; under load a link
// accumulates until MaxFrames messages or MaxBytes modeled bytes are
// queued, and a background flusher bounds the wait of a partial batch
// to roughly MaxDelay.
//
// Batching preserves per-link FIFO: messages for one (src, dst) pair
// reach the inner transport in Send order, whatever the batch
// boundaries. Telemetry messages (HandlerTelemetry) and self-sends
// bypass the queues entirely — the former so the observability plane
// neither perturbs nor rides on batching, the latter because loopback
// has no wire to optimize.
type BatchingTransport struct {
	inner Transport
	opts  BatchOptions
	n     int
	links []*batchLink // n*n, indexed src*n+dst

	mirror   map[HandlerID]struct{} // ids registered through this wrapper
	mirrorMu sync.RWMutex

	bs BatchSender // inner's batch fast path, nil when unsupported
	pk PlaceKiller // inner's kill support, nil when unsupported
	bm batchMetrics
	lg atomic.Pointer[WireLedger] // queue-wait attribution, nil when detached

	closed  atomic.Bool
	bgErr   atomic.Value // first background flush error (type error)
	stop    chan struct{}
	stopped sync.WaitGroup
}

// NewBatchingTransport wraps inner with per-link send batching. Close
// flushes the queues and closes inner.
func NewBatchingTransport(inner Transport, opts BatchOptions) *BatchingTransport {
	opts.fill()
	n := inner.NumPlaces()
	t := &BatchingTransport{
		inner:  inner,
		opts:   opts,
		n:      n,
		links:  make([]*batchLink, n*n),
		mirror: make(map[HandlerID]struct{}),
		stop:   make(chan struct{}),
	}
	for i := range t.links {
		// lastNs far in the past so the first send on every link takes
		// the idle fast path.
		t.links[i] = &batchLink{lastNs: math.MinInt64 / 2}
	}
	t.bs, _ = inner.(BatchSender)
	t.pk, _ = inner.(PlaceKiller)
	if dn, ok := inner.(DeathNotifier); ok {
		// A death reported from below (e.g. a chaos-injected kill on the
		// inner transport) must drop the batches queued for the dead
		// place up here, or a later flush would fail and poison the
		// whole wrapper. Idempotent, so the once-per-survivor callback
		// shape is fine.
		dn.NotifyDeath(func(dead, _ int) { t.purgePlace(dead) })
	}
	t.stopped.Add(1)
	go t.flushLoop()
	return t
}

// purgePlace discards every queued message on links to or from p.
func (t *BatchingTransport) purgePlace(p int) {
	if p < 0 || p >= t.n {
		return
	}
	for src := 0; src < t.n; src++ {
		for dst := 0; dst < t.n; dst++ {
			if src != p && dst != p {
				continue
			}
			l := t.links[src*t.n+dst]
			l.mu.Lock()
			l.q = nil
			l.qBytes = 0
			l.mu.Unlock()
		}
	}
}

// Inner returns the wrapped transport.
func (t *BatchingTransport) Inner() Transport { return t.inner }

// NumPlaces implements Transport.
func (t *BatchingTransport) NumPlaces() int { return t.n }

// Register implements Transport. The wrapper mirrors registrations so
// a Send naming an unregistered handler fails synchronously, before
// the message disappears into a queue.
func (t *BatchingTransport) Register(id HandlerID, h Handler) error {
	if err := t.inner.Register(id, h); err != nil {
		return err
	}
	t.mirrorMu.Lock()
	t.mirror[id] = struct{}{}
	t.mirrorMu.Unlock()
	return nil
}

// Send implements Transport. It enqueues on the (src, dst) link and
// returns; the batch reaches the inner transport on this call (idle or
// full link), on a later send, or on the background flusher's tick.
func (t *BatchingTransport) Send(src, dst int, id HandlerID, payload any, bytes int, class Class) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if err, _ := t.bgErr.Load().(error); err != nil {
		return fmt.Errorf("x10rt: earlier batch flush failed: %w", err)
	}
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n {
		return fmt.Errorf("%w: src=%d dst=%d n=%d", ErrBadPlace, src, dst, t.n)
	}
	t.mirrorMu.RLock()
	_, ok := t.mirror[id]
	t.mirrorMu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: id=%d", ErrNoHandler, id)
	}
	if t.pk != nil {
		if t.pk.PlaceDead(dst) {
			return &PlaceDeadError{Place: dst}
		}
		if t.pk.PlaceDead(src) {
			return &PlaceDeadError{Place: src}
		}
	}
	if src == dst || id == HandlerTelemetry {
		return t.inner.Send(src, dst, id, payload, bytes, class)
	}

	l := t.links[src*t.n+dst]
	now := t.opts.Now()
	l.mu.Lock()
	if len(l.q) == 0 {
		l.firstNs = now
	}
	l.q = append(l.q, BatchMsg{ID: id, Payload: payload, Bytes: bytes, Class: class})
	l.qBytes += bytes
	idle := len(l.q) == 1 && now-l.lastNs >= int64(t.opts.MaxDelay)
	full := len(l.q) >= t.opts.MaxFrames || l.qBytes >= t.opts.MaxBytes
	l.lastNs = now
	l.mu.Unlock()

	switch {
	case idle:
		return t.flushLink(l, src, dst, flushIdle)
	case full:
		return t.flushLink(l, src, dst, flushSize)
	}
	return nil
}

// SendOneSided implements OneSidedSender when the inner transport has a
// one-sided lane. The link's queued batch is flushed first so the op
// cannot overtake active messages already accepted on the same link —
// one-sided ordering is exactly send order, batched or not.
func (t *BatchingTransport) SendOneSided(src, dst int, op *OneSidedOp) error {
	os, ok := t.inner.(OneSidedSender)
	if !ok {
		return fmt.Errorf("x10rt: inner transport has no one-sided lane")
	}
	if t.closed.Load() {
		return ErrClosed
	}
	if err, _ := t.bgErr.Load().(error); err != nil {
		return fmt.Errorf("x10rt: earlier batch flush failed: %w", err)
	}
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n {
		return fmt.Errorf("%w: src=%d dst=%d n=%d", ErrBadPlace, src, dst, t.n)
	}
	if t.pk != nil {
		if t.pk.PlaceDead(dst) {
			return &PlaceDeadError{Place: dst}
		}
		if t.pk.PlaceDead(src) {
			return &PlaceDeadError{Place: src}
		}
	}
	if src != dst {
		if err := t.flushLink(t.links[src*t.n+dst], src, dst, flushExplicit); err != nil {
			return err
		}
	}
	return os.SendOneSided(src, dst, op)
}

// AttachArenas implements OneSidedSink by delegation.
func (t *BatchingTransport) AttachArenas(at *ArenaTable) {
	if s, ok := t.inner.(OneSidedSink); ok {
		s.AttachArenas(at)
	}
}

// flushLink forwards everything queued on l to the inner transport.
// sendMu makes concurrent flushes of the same link mutually exclusive
// and in-order; the queue swap under mu keeps Send fast.
func (t *BatchingTransport) flushLink(l *batchLink, src, dst int, why flushReason) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()

	l.mu.Lock()
	q := l.q
	qBytes := l.qBytes
	firstNs := l.firstNs
	l.q = nil
	l.qBytes = 0
	l.mu.Unlock()
	if len(q) == 0 {
		return nil
	}

	t.bm.batches.Inc()
	t.bm.msgs.Add(uint64(len(q)))
	t.bm.reasons[why].Inc()
	t.bm.frames.Observe(uint64(len(q)))
	t.bm.bytes.Observe(uint64(qBytes))
	d := t.opts.Now() - firstNs
	if d > 0 {
		t.bm.delay.Observe(uint64(d))
	} else {
		d = 0
		t.bm.delay.Observe(0)
	}
	if lg := t.lg.Load(); lg != nil {
		lg.RecordQueueWait(src, dst, d)
	}

	if t.bs != nil && len(q) > 1 {
		return t.bs.SendBatch(src, dst, q, t.opts.CompressMin)
	}
	for i := range q {
		m := &q[i]
		if err := t.inner.Send(src, dst, m.ID, m.Payload, m.Bytes, m.Class); err != nil {
			return err
		}
	}
	return nil
}

// flushLoop is the background flusher: it wakes a few times per
// MaxDelay and pushes out any queue whose oldest message has waited
// long enough, bounding the latency cost of batching on links that go
// quiet mid-batch.
func (t *BatchingTransport) flushLoop() {
	defer t.stopped.Done()
	period := t.opts.MaxDelay / 2
	if period < 50*time.Microsecond {
		period = 50 * time.Microsecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	prevNow := int64(math.MinInt64)
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		now := t.opts.Now()
		stalled := t.opts.FlushOnStall && now == prevNow
		prevNow = now
		var qdepth, qbytes int64
		for src := 0; src < t.n; src++ {
			for dst := 0; dst < t.n; dst++ {
				l := t.links[src*t.n+dst]
				l.mu.Lock()
				qdepth += int64(len(l.q))
				qbytes += int64(l.qBytes)
				aged := len(l.q) > 0 && (stalled || now-l.firstNs >= int64(t.opts.MaxDelay))
				l.mu.Unlock()
				if !aged {
					continue
				}
				if err := t.flushLink(l, src, dst, flushAged); err != nil &&
					!errors.Is(err, ErrClosed) && !errors.Is(err, ErrPlaceDead) {
					// A dead-place flush failure loses only that link's
					// frames (the place is gone); it must not poison the
					// surviving links' traffic.
					t.bgErr.CompareAndSwap(nil, err)
				}
			}
		}
		// The gauges sample the pre-flush queue state of this tick, so a
		// standing backlog shows up even when every aged link drains.
		t.bm.qdepth.Set(qdepth)
		t.bm.qbytes.Set(qbytes)
	}
}

// Flush implements Flusher: it pushes every batch queued at source
// place src (all of them when src < 0) to the inner transport now.
func (t *BatchingTransport) Flush(src int) error {
	var first error
	lo, hi := src, src+1
	if src < 0 {
		lo, hi = 0, t.n
	}
	for s := lo; s < hi; s++ {
		for dst := 0; dst < t.n; dst++ {
			if err := t.flushLink(t.links[s*t.n+dst], s, dst, flushExplicit); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Quiesce flushes all queues and waits for the inner transport to go
// idle, repeating while handlers generate new batched traffic. It only
// terminates when the system actually quiesces, matching the contract
// of ChanTransport.Quiesce and chaos drains.
func (t *BatchingTransport) Quiesce() {
	type quiescer interface{ Quiesce() }
	iq, _ := t.inner.(quiescer)
	for {
		before := t.bm.batches.Value()
		_ = t.Flush(-1)
		if iq != nil {
			iq.Quiesce()
		}
		queued := false
		for _, l := range t.links {
			l.mu.Lock()
			if len(l.q) > 0 {
				queued = true
			}
			l.mu.Unlock()
		}
		if !queued && t.bm.batches.Value() == before {
			return
		}
	}
}

// KillPlace implements PlaceKiller when the inner transport does: the
// wrapper's queues touching p are dropped first so no doomed flush
// races the kill, then the death propagates down (which fires the
// inner transport's notifiers, including the purge subscription).
func (t *BatchingTransport) KillPlace(p int) error {
	if t.pk == nil {
		return fmt.Errorf("x10rt: inner transport %T cannot kill places", t.inner)
	}
	if p < 0 || p >= t.n {
		return fmt.Errorf("%w: p=%d n=%d", ErrBadPlace, p, t.n)
	}
	t.purgePlace(p)
	return t.pk.KillPlace(p)
}

// PlaceDead implements PlaceKiller by delegation.
func (t *BatchingTransport) PlaceDead(p int) bool {
	return t.pk != nil && t.pk.PlaceDead(p)
}

// NotifyDeath implements DeathNotifier by delegation; without inner
// support it is a no-op (no death can ever be reported).
func (t *BatchingTransport) NotifyDeath(fn func(dead, observer int)) {
	if dn, ok := t.inner.(DeathNotifier); ok {
		dn.NotifyDeath(fn)
	}
}

// Stats implements Transport by delegating to the inner transport,
// which owns the traffic counters.
func (t *BatchingTransport) Stats() Stats { return t.inner.Stats() }

// AttachMetrics implements MetricSource: the inner transport's traffic
// counters plus the wrapper's x10rt.batch.* metrics.
func (t *BatchingTransport) AttachMetrics(r *obs.Registry) {
	if ms, ok := t.inner.(MetricSource); ok {
		ms.AttachMetrics(r)
	}
	t.bm.attach(r)
}

// AttachTracer implements TracerSink by delegation: HLC stamping
// happens in the inner transport, where frames are actually encoded.
func (t *BatchingTransport) AttachTracer(tr *obs.Tracer) {
	if ts, ok := t.inner.(TracerSink); ok {
		ts.AttachTracer(tr)
	}
}

// AttachWireLedger implements LedgerSink: the attachment is forwarded
// to the inner transport (which records sends, wire bytes, and codec
// timings), and the wrapper additionally records each link's batch
// queue wait into the same ledger.
func (t *BatchingTransport) AttachWireLedger(lg *WireLedger) {
	t.lg.Store(lg)
	if ls, ok := t.inner.(LedgerSink); ok {
		ls.AttachWireLedger(lg)
	}
}

// PlaceStats implements PlaceMetricSource by delegation.
func (t *BatchingTransport) PlaceStats(p int) Stats {
	if ps, ok := t.inner.(PlaceMetricSource); ok {
		return ps.PlaceStats(p)
	}
	return Stats{}
}

// AttachPlaceMetrics implements PlaceMetricSource by delegation.
func (t *BatchingTransport) AttachPlaceMetrics(p int, r *obs.Registry) {
	if ps, ok := t.inner.(PlaceMetricSource); ok {
		ps.AttachPlaceMetrics(p, r)
	}
}

// BatchStats reports the wrapper's own counters: batches forwarded and
// messages they carried.
func (t *BatchingTransport) BatchStats() (batches, msgs uint64) {
	return t.bm.batches.Value(), t.bm.msgs.Value()
}

// Close implements Transport: it stops the background flusher, pushes
// out every queued message, and closes the inner transport.
func (t *BatchingTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stop)
	t.stopped.Wait()
	_ = t.Flush(-1)
	return t.inner.Close()
}
