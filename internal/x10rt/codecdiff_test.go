package x10rt

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"
)

// Differential codec battery: every payload the generator produces must
// round-trip through the v4 binary codec frame and through the v2 gob
// frame to the same value — the codec is an encoding change, never a
// semantic one. A second battery pins mixed-version interop: gob-era
// frames (v1/v2/v3) decoded by a codec-capable endpoint and v4 frames
// decoded by a gob-era endpoint, including over a live asymmetric TCP
// mesh.

// diffGobOnly has no registered codec: it exercises the typeRef-0 gob
// fallback inside v4 frames.
type diffGobOnly struct {
	A string
	B []int
	C map[string]int
}

// diffBin travels via a RegisterBinaryStruct reflection plan.
type diffBin struct {
	X    uint64
	Name string
	Vals []float64
	On   bool
}

func init() {
	gob.Register(diffGobOnly{})
	gob.Register(diffBin{})
	if err := RegisterBinaryStruct(diffBin{}); err != nil {
		panic(err)
	}
}

// genPayload draws one payload from the registered-codec shapes (scalars,
// []byte across the zero-copy threshold, fixed-width slices, a binary
// struct) plus the gob-only fallback shape.
func genPayload(rng *rand.Rand) any {
	switch rng.Intn(12) {
	case 0:
		n := 1 + rng.Intn(2*codecZeroCopyMin) // spans the zero-copy cut threshold
		b := make([]byte, n)
		rng.Read(b)
		return b
	case 1:
		return fmt.Sprintf("s-%x", rng.Uint64())
	case 2:
		return rng.Intn(2) == 0
	case 3:
		return int(rng.Int63()) - math.MaxInt32
	case 4:
		return int32(rng.Uint32())
	case 5:
		return int64(rng.Uint64())
	case 6:
		return rng.Uint64()
	case 7:
		return math.Float64frombits(0x3ff0000000000000 | rng.Uint64()>>12)
	case 8:
		s := make([]uint64, 1+rng.Intn(64))
		for i := range s {
			s[i] = rng.Uint64()
		}
		return s
	case 9:
		s := make([]float64, 1+rng.Intn(64))
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	case 10:
		return diffBin{
			X:    rng.Uint64(),
			Name: fmt.Sprintf("bin-%d", rng.Intn(1000)),
			Vals: []float64{rng.NormFloat64(), rng.NormFloat64()},
			On:   rng.Intn(2) == 0,
		}
	default:
		return diffGobOnly{
			A: fmt.Sprintf("gob-%d", rng.Intn(1000)),
			B: []int{rng.Int(), rng.Int()},
			C: map[string]int{"k": rng.Intn(100)},
		}
	}
}

// encodeV4 renders msgs as one v4 frame and returns the full frame bytes.
func encodeV4(t *testing.T, tt *typeTableSender, msgs []BatchMsg, compressMin int, hlc uint64, hlcOn bool) []byte {
	t.Helper()
	stage := make([]byte, 0, 1024)
	segs, wireLen, err := appendCodecBatchFrame(&stage, 0, 1, msgs, compressMin, hlc, hlcOn, tt, nil)
	if err != nil {
		t.Fatalf("appendCodecBatchFrame: %v", err)
	}
	var frame []byte
	for _, s := range segs {
		frame = append(frame, s...)
	}
	if len(frame) != wireLen {
		t.Fatalf("wireLen = %d, frame = %d bytes", wireLen, len(frame))
	}
	return frame
}

// decodeV4 parses a full v4 frame (header included).
func decodeV4(t *testing.T, ttr *typeTableReceiver, frame []byte) ([]wireMsg, uint64) {
	t.Helper()
	if len(frame) < frameHeaderSize || frame[0] != frameMagic || frame[1] != batchVersionCodec {
		t.Fatalf("bad v4 frame header % x", frame[:frameHeaderSize])
	}
	msgs, hlc, err := decodeCodecBatchPayloadLG(frame[frameHeaderSize:], ttr, nil, 1)
	if err != nil {
		t.Fatalf("decodeCodecBatchPayloadLG: %v", err)
	}
	return msgs, hlc
}

// encodeV2 renders msgs as one v2 gob batch frame.
func encodeV2(t *testing.T, msgs []BatchMsg, compressMin int) []byte {
	t.Helper()
	frame, err := appendBatchFrameV(nil, batchVersion, 0, msgs, compressMin, 0, nil, 1)
	if err != nil {
		t.Fatalf("appendBatchFrameV: %v", err)
	}
	return frame
}

// TestCodecDifferential: randomized batches, encoded through both wire
// generations, must decode value-for-value identical.
func TestCodecDifferential(t *testing.T) {
	const rounds = 200
	rng := rand.New(rand.NewSource(0x10c0dec))
	tts := &typeTableSender{}
	ttr := &typeTableReceiver{}
	for round := 0; round < rounds; round++ {
		n := 1 + rng.Intn(8)
		msgs := make([]BatchMsg, n)
		for i := range msgs {
			msgs[i] = BatchMsg{
				ID:      UserHandlerBase + HandlerID(rng.Intn(16)),
				Payload: genPayload(rng),
				Bytes:   rng.Intn(512),
				Class:   Class(rng.Intn(int(numClasses))),
			}
		}
		compressMin := 0
		if rng.Intn(4) == 0 {
			compressMin = 1 // force compression: exercises the contiguous body
		}
		hlcOn := rng.Intn(2) == 0
		hlc := rng.Uint64() >> 1

		// The type table is per-connection state: the same sender/receiver
		// pair persists across rounds, like frames on one TCP stream.
		binMsgs, binHLC := decodeV4(t, ttr, encodeV4(t, tts, msgs, compressMin, hlc, hlcOn))
		gobMsgs, err := decodeBatchPayloadLG(encodeV2(t, msgs, compressMin)[frameHeaderSize:], nil, 1)
		if err != nil {
			t.Fatalf("round %d: decode v2: %v", round, err)
		}

		if hlcOn && binHLC != hlc {
			t.Fatalf("round %d: hlc = %d, want %d", round, binHLC, hlc)
		}
		if !hlcOn && binHLC != 0 {
			t.Fatalf("round %d: hlc = %d without the flag", round, binHLC)
		}
		if len(binMsgs) != n || len(gobMsgs) != n {
			t.Fatalf("round %d: %d binary / %d gob msgs, want %d", round, len(binMsgs), len(gobMsgs), n)
		}
		for i := range msgs {
			b, g := binMsgs[i], gobMsgs[i]
			if b.ID != g.ID || b.Class != g.Class || b.Bytes != g.Bytes || b.Src != g.Src {
				t.Fatalf("round %d msg %d: metadata diverged: binary %+v gob %+v", round, i, b, g)
			}
			if !reflect.DeepEqual(b.Payload, g.Payload) {
				t.Fatalf("round %d msg %d (%T): binary %#v != gob %#v",
					round, i, msgs[i].Payload, b.Payload, g.Payload)
			}
			if !reflect.DeepEqual(b.Payload, msgs[i].Payload) {
				t.Fatalf("round %d msg %d (%T): decoded %#v != sent %#v",
					round, i, msgs[i].Payload, b.Payload, msgs[i].Payload)
			}
		}
	}
}

// TestCodecMixedVersionDecode: one endpoint's decode loop accepts every
// frame generation on the same stream — v2 and v3 gob batches
// interleaved with v4 codec batches, in any order, sharing one receiver
// type table.
func TestCodecMixedVersionDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tts := &typeTableSender{}
	ttr := &typeTableReceiver{}
	for round := 0; round < 60; round++ {
		msgs := []BatchMsg{{
			ID:      UserHandlerBase,
			Payload: genPayload(rng),
			Bytes:   64,
			Class:   DataClass,
		}}
		var got []wireMsg
		switch round % 3 {
		case 0: // v2 gob frame into a codec-capable decode switch
			frame := encodeV2(t, msgs, 0)
			var err error
			got, err = decodeBatchPayloadLG(frame[frameHeaderSize:], nil, 1)
			if err != nil {
				t.Fatalf("round %d: v2 decode: %v", round, err)
			}
		case 1: // v3 traced gob frame
			frame, err := appendBatchFrameV(nil, batchVersionTraced, 0, msgs, 0, 7, nil, 1)
			if err != nil {
				t.Fatalf("round %d: encode v3: %v", round, err)
			}
			body := frame[frameHeaderSize:]
			hlc, n := binary.Uvarint(body)
			if n <= 0 || hlc != 7 {
				t.Fatalf("round %d: v3 hlc = %d (n=%d)", round, hlc, n)
			}
			got, err = decodeBatchPayloadLG(body[n:], nil, 1)
			if err != nil {
				t.Fatalf("round %d: v3 decode: %v", round, err)
			}
		default: // v4 codec frame
			got, _ = decodeV4(t, ttr, encodeV4(t, tts, msgs, 0, 0, false))
		}
		if len(got) != 1 || !reflect.DeepEqual(got[0].Payload, msgs[0].Payload) {
			t.Fatalf("round %d: decoded %#v, want %#v", round, got, msgs[0].Payload)
		}
	}
}

// TestCodecMixedVersionMesh runs a live asymmetric TCP pair: place 0
// speaks v4 (codec), place 1 speaks gob. Both directions must deliver —
// decode is version-driven, not option-driven, so old and new endpoints
// interoperate during a rolling upgrade.
func TestCodecMixedVersionMesh(t *testing.T) {
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mesh := []*TCPTransport{
		newTCPWithListener(TCPOptions{Place: 0, Addrs: addrs, Codec: true}, listeners[0]),
		newTCPWithListener(TCPOptions{Place: 1, Addrs: addrs, Codec: false}, listeners[1]),
	}
	t.Cleanup(func() {
		for _, tr := range mesh {
			tr.Close()
		}
	})

	type recv struct {
		src     int
		payload any
	}
	ch := make(chan recv, 16)
	for _, tr := range mesh {
		if err := tr.Register(UserHandlerBase+200, func(src, dst int, payload any) {
			ch <- recv{src, payload}
		}); err != nil {
			t.Fatal(err)
		}
	}

	want0to1 := []uint64{1, 2, 3}
	if err := mesh[0].Send(0, 1, UserHandlerBase+200, want0to1, 24, DataClass); err != nil {
		t.Fatalf("codec->gob send: %v", err)
	}
	want1to0 := diffBin{X: 9, Name: "up", Vals: []float64{1.5}, On: true}
	if err := mesh[1].Send(1, 0, UserHandlerBase+200, want1to0, 24, DataClass); err != nil {
		t.Fatalf("gob->codec send: %v", err)
	}

	seen := 0
	timeout := time.After(10 * time.Second)
	for seen < 2 {
		select {
		case r := <-ch:
			seen++
			switch r.src {
			case 0:
				if !reflect.DeepEqual(r.payload, want0to1) {
					t.Errorf("v4 frame at gob endpoint: %#v, want %#v", r.payload, want0to1)
				}
			case 1:
				if !reflect.DeepEqual(r.payload, want1to0) {
					t.Errorf("gob frame at codec endpoint: %#v, want %#v", r.payload, want1to0)
				}
			}
		case <-timeout:
			t.Fatalf("mixed mesh delivered %d/2 messages", seen)
		}
	}
}
