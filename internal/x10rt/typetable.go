package x10rt

import "fmt"

// The type table is the codec's per-connection "handshake": instead of
// a separate negotiation round trip, the first v4 frame that carries a
// payload type announces (id, codec name) in its new-types section,
// and every later frame on the same connection refers to the type by
// its small integer id. Ids are assigned densely starting at 1 in
// first-use order by the sender and bound in arrival order by the
// receiver, so the two tables agree as long as frames arrive in order
// — which TCP guarantees per connection. Id 0 is reserved for the gob
// fallback and never appears in a table.
//
// The receiver enforces dense sequential ids and a hard size bound, so
// a torn or hostile type table is detected at bind time and costs at
// most its own connection (FuzzTypeTableHandshake pins this).

// maxTypeTableEntries bounds a connection's type table. Far above any
// legitimate mesh (a handful of payload types); a larger table is
// corruption.
const maxTypeTableEntries = 1 << 12

// maxTypeNameLen bounds one announced codec name.
const maxTypeNameLen = 256

// typeTableSender is one outbound connection's name → id map. It is
// guarded by the connection's write lock: ids must be assigned in the
// same order frames hit the wire, or the receiver would bind them to
// the wrong codecs.
type typeTableSender struct {
	ids  map[string]uint32
	next uint32
}

// assign returns the id for a codec name, allocating the next dense id
// (and reporting isNew) on first use.
func (tt *typeTableSender) assign(name string) (id uint32, isNew bool) {
	if tt.ids == nil {
		tt.ids = make(map[string]uint32, 8)
	}
	if id, ok := tt.ids[name]; ok {
		return id, false
	}
	tt.next++
	tt.ids[name] = tt.next
	return tt.next, true
}

// typeTableReceiver is one inbound connection's id → codec table,
// grown by the new-types sections of arriving frames. Only the
// connection's reader touches it.
type typeTableReceiver struct {
	codecs []*WireCodec // codecs[id-1]
}

// bind processes one (id, name) announcement. Ids must arrive densely
// (1, 2, 3, …): anything else means the stream lost a frame or the
// peer is hostile, and the connection dies rather than desynchronize.
func (tt *typeTableReceiver) bind(id uint32, name string) error {
	if id != uint32(len(tt.codecs))+1 {
		return fmt.Errorf("%w: type table id %d, expected %d (torn table)",
			ErrFrameCorrupt, id, len(tt.codecs)+1)
	}
	if len(tt.codecs) >= maxTypeTableEntries {
		return fmt.Errorf("%w: type table exceeds %d entries", ErrFrameCorrupt, maxTypeTableEntries)
	}
	c := lookupWireCodecByName(name)
	if c == nil {
		return fmt.Errorf("x10rt: peer announced unknown codec %q (register identically on every place)", name)
	}
	tt.codecs = append(tt.codecs, c)
	return nil
}

// codec resolves a message's type reference (id >= 1).
func (tt *typeTableReceiver) codec(id uint32) (*WireCodec, error) {
	if id == 0 || id > uint32(len(tt.codecs)) {
		return nil, fmt.Errorf("%w: type ref %d outside table of %d", ErrFrameCorrupt, id, len(tt.codecs))
	}
	return tt.codecs[id-1], nil
}
