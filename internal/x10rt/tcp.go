package x10rt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"apgas/internal/obs"
)

// TCPOptions configures one endpoint of a TCPTransport mesh.
type TCPOptions struct {
	// Place is this endpoint's place index.
	Place int
	// Addrs lists the listen address of every place, indexed by place.
	// Addrs[Place] is the address this endpoint listens on.
	Addrs []string
	// Codec switches outbound frames from gob (v1/v2/v3) to the binary
	// codec batch format (v4): payload types with a registered WireCodec
	// (RegisterWireCodec) travel as raw little-endian bytes after a
	// per-connection type-table handshake; everything else rides the gob
	// fallback inside the same frame. Every endpoint decodes all
	// versions regardless, so a codec mesh can be rolled out one
	// endpoint at a time.
	Codec bool
}

// TCPTransport is a socket-based Transport standing in for X10RT's
// PAMI/sockets backends. Each place runs one endpoint; endpoints connect
// lazily on first send. Payloads are gob-encoded, so applications must
// register concrete payload types with RegisterWireType before sending.
//
// Unlike ChanTransport, a TCPTransport value represents a single place; a
// full mesh consists of one TCPTransport per place (usually one per
// process). Delivery is FIFO per (src, dst) link, as TCP guarantees.
type TCPTransport struct {
	opts     TCPOptions
	handlers *handlerTable
	listener net.Listener
	ctrs     counters
	egress   counters // messages sent by this endpoint only
	deaths   deathState

	mu     sync.Mutex
	conns  map[int]*tcpConn // outbound, keyed by dst
	closed bool

	// tr, when attached, stamps outgoing batch frames with this place's
	// hybrid logical clock (frame version 3) and folds inbound stamps
	// back in — but only while the tracer has distributed tracing
	// enabled; otherwise the wire format is byte-identical to version 2.
	tr atomic.Pointer[obs.Tracer]

	// lg, when attached, attributes every message to its handler and
	// link, with gob encode/decode timings (see WireLedger).
	lg atomic.Pointer[WireLedger]

	// writeq gauges the endpoint's write backpressure: the number of
	// goroutines queued on (or holding) an outbound connection's write
	// lock. A persistently high value means the wire, not the
	// application, is the bottleneck — the ledger's per-link and
	// per-handler accounts then name the traffic responsible.
	writeq obs.Gauge

	// arenas, when attached, lets the endpoint land one-sided frames
	// (v5) directly in registered memory windows.
	arenas atomic.Pointer[ArenaTable]

	loop     chan wireMsg // self-sends, kept FIFO
	wg       sync.WaitGroup
	loopOnce sync.Once
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	// tt is the outbound type table (codec mode). Guarded by mu: ids
	// must be assigned in the exact order frames hit the wire.
	tt typeTableSender
}

// wireMsg is the on-the-wire message format. Each message travels as one
// frame (see frame.go) whose payload is a self-contained gob encoding of
// the wireMsg, so a receiver can validate and decode every message
// independently — no shared decoder state to desynchronize.
type wireMsg struct {
	Src     int
	ID      HandlerID
	Class   Class
	Bytes   int
	Payload any
}

// encodeWireMsg renders m as one framed, self-contained gob message.
func encodeWireMsg(m *wireMsg) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return nil, err
	}
	return AppendFrame(nil, payload.Bytes())
}

// appendWireMsg is the pooled-buffer variant of encodeWireMsg used on
// the send hot path: the gob payload is staged in a pooled scratch
// buffer and framed directly into dst, so a steady-state send performs
// no frame-sized allocations of its own.
func appendWireMsg(dst []byte, m *wireMsg) ([]byte, error) {
	payload := getBuf()
	defer putBuf(payload)
	if err := gob.NewEncoder(payload).Encode(m); err != nil {
		return dst, err
	}
	return AppendFrame(dst, payload.Bytes())
}

// decodeWireMsg decodes one frame payload. Frame payloads can arrive from
// another process (or a fuzzer), and gob's decoder reports some malformed
// inputs by panicking; the recover converts any such panic into an error
// so a corrupt peer can only cost its own connection.
func decodeWireMsg(payload []byte) (m wireMsg, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("x10rt: wire decode panic: %v", r)
		}
	}()
	err = gob.NewDecoder(bytes.NewReader(payload)).Decode(&m)
	return m, err
}

// RegisterWireType registers a concrete payload type for gob encoding.
// It must be called (with identical types) in every process of the mesh
// before any Send carrying that type.
func RegisterWireType(v any) { gob.Register(v) }

// NewTCPTransport creates a TCP endpoint and starts its listener and
// dispatcher. The other endpoints need not be up yet; connections are
// established lazily when sending.
func NewTCPTransport(opts TCPOptions) (*TCPTransport, error) {
	if opts.Place < 0 || opts.Place >= len(opts.Addrs) {
		return nil, fmt.Errorf("%w: place=%d addrs=%d", ErrBadPlace, opts.Place, len(opts.Addrs))
	}
	ln, err := net.Listen("tcp", opts.Addrs[opts.Place])
	if err != nil {
		return nil, fmt.Errorf("x10rt: listen %s: %w", opts.Addrs[opts.Place], err)
	}
	return newTCPWithListener(opts, ln), nil
}

// NewLocalTCPMesh creates a fully wired n-place mesh on loopback with
// system-assigned ports. It is intended for tests and single-machine
// multi-endpoint experiments.
func NewLocalTCPMesh(n int) ([]*TCPTransport, error) {
	return newLocalTCPMesh(n, false)
}

// NewLocalCodecTCPMesh is NewLocalTCPMesh with the binary wire codec
// enabled on every endpoint (TCPOptions.Codec).
func NewLocalCodecTCPMesh(n int) ([]*TCPTransport, error) {
	return newLocalTCPMesh(n, true)
}

func newLocalTCPMesh(n int, codec bool) ([]*TCPTransport, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, fmt.Errorf("x10rt: mesh listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mesh := make([]*TCPTransport, n)
	for i := 0; i < n; i++ {
		mesh[i] = newTCPWithListener(TCPOptions{Place: i, Addrs: addrs, Codec: codec}, listeners[i])
	}
	return mesh, nil
}

func newTCPWithListener(opts TCPOptions, ln net.Listener) *TCPTransport {
	t := &TCPTransport{
		opts:     opts,
		handlers: newHandlerTable(),
		listener: ln,
		conns:    make(map[int]*tcpConn),
		loop:     make(chan wireMsg, 256),
	}
	t.wg.Add(2)
	go t.accept()
	go t.selfDispatch()
	return t
}

// Addr returns the address this endpoint is actually listening on (useful
// when the configured address had port 0).
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// NumPlaces implements Transport.
func (t *TCPTransport) NumPlaces() int { return len(t.opts.Addrs) }

// Register implements Transport.
func (t *TCPTransport) Register(id HandlerID, h Handler) error {
	return t.handlers.register(id, h)
}

// Send implements Transport. src must equal the endpoint's own place.
func (t *TCPTransport) Send(src, dst int, id HandlerID, payload any, bytes int, class Class) error {
	if src != t.opts.Place {
		return fmt.Errorf("%w: send from %d on endpoint %d", ErrBadPlace, src, t.opts.Place)
	}
	if dst < 0 || dst >= len(t.opts.Addrs) {
		return fmt.Errorf("%w: dst=%d", ErrBadPlace, dst)
	}
	if p := t.deaths.deadEnd(src, dst); p >= 0 {
		return &PlaceDeadError{Place: p}
	}
	m := wireMsg{Src: src, ID: id, Class: class, Bytes: bytes, Payload: payload}
	if dst == t.opts.Place {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		t.loop <- m
		if countable(id) {
			t.ctrs.add(class, bytes)
			t.egress.add(class, bytes)
			// Loopback has no wire; the modeled size stands in so
			// WireBytes remains a complete egress account.
			t.ctrs.addWire(bytes)
			t.egress.addWire(bytes)
			if lg := t.lg.Load(); lg != nil {
				lg.RecordSend(src, dst, id, bytes)
				lg.RecordWire(src, dst, bytes)
			}
		}
		return nil
	}
	lg := t.lg.Load()
	if t.opts.Codec {
		one := [1]BatchMsg{{ID: id, Payload: payload, Bytes: bytes, Class: class}}
		wireLen, err := t.writeCodecBatch(src, dst, one[:], 0)
		if err != nil {
			return err
		}
		if countable(id) {
			t.ctrs.add(class, bytes)
			t.egress.add(class, bytes)
			t.ctrs.addWire(wireLen)
			t.egress.addWire(wireLen)
			if lg != nil {
				lg.RecordSend(src, dst, id, bytes)
				lg.RecordWire(src, dst, wireLen)
			}
		}
		return nil
	}
	fp := getFrameBuf()
	defer putFrameBuf(fp)
	var t0 int64
	if lg != nil {
		t0 = wireNow()
	}
	frame, err := appendWireMsg((*fp)[:0], &m)
	if lg != nil {
		lg.RecordEncode(src, id, wireNow()-t0)
	}
	*fp = frame[:0]
	if err != nil {
		return fmt.Errorf("x10rt: encode for %d: %w", dst, err)
	}
	conn, err := t.connTo(dst)
	if err != nil {
		return err
	}
	t.writeq.Add(1)
	conn.mu.Lock()
	_, err = conn.c.Write(frame)
	conn.mu.Unlock()
	t.writeq.Add(-1)
	if err != nil {
		return fmt.Errorf("x10rt: send to %d: %w", dst, err)
	}
	if countable(id) {
		t.ctrs.add(class, bytes)
		t.egress.add(class, bytes)
		t.ctrs.addWire(len(frame))
		t.egress.addWire(len(frame))
		if lg != nil {
			lg.RecordSend(src, dst, id, bytes)
			lg.RecordWire(src, dst, len(frame))
		}
	}
	return nil
}

// SendBatch implements BatchSender: msgs travel as one version-2 batch
// frame — a single gob stream, a single write syscall, and at most one
// compression pass — instead of len(msgs) individual frames. Messages
// are delivered at dst in slice order. Wire bytes are counted once for
// the whole frame; the per-class counters still see every message.
// Batches are assembled by the BatchingTransport, which never batches
// telemetry traffic, so the frame as a whole is countable.
func (t *TCPTransport) SendBatch(src, dst int, msgs []BatchMsg, compressMin int) error {
	if len(msgs) == 0 {
		return nil
	}
	if src != t.opts.Place {
		return fmt.Errorf("%w: send from %d on endpoint %d", ErrBadPlace, src, t.opts.Place)
	}
	if dst < 0 || dst >= len(t.opts.Addrs) {
		return fmt.Errorf("%w: dst=%d", ErrBadPlace, dst)
	}
	if p := t.deaths.deadEnd(src, dst); p >= 0 {
		return &PlaceDeadError{Place: p}
	}
	if dst == t.opts.Place {
		for i := range msgs {
			m := &msgs[i]
			if err := t.Send(src, dst, m.ID, m.Payload, m.Bytes, m.Class); err != nil {
				return err
			}
		}
		return nil
	}
	lg := t.lg.Load()
	if t.opts.Codec {
		wireLen, err := t.writeCodecBatch(src, dst, msgs, compressMin)
		if err != nil {
			return err
		}
		for i := range msgs {
			if countable(msgs[i].ID) {
				t.ctrs.add(msgs[i].Class, msgs[i].Bytes)
				t.egress.add(msgs[i].Class, msgs[i].Bytes)
				if lg != nil {
					lg.RecordSend(src, dst, msgs[i].ID, msgs[i].Bytes)
				}
			}
		}
		t.ctrs.addWire(wireLen)
		t.egress.addWire(wireLen)
		lg.RecordWire(src, dst, wireLen)
		return nil
	}
	fp := getFrameBuf()
	defer putFrameBuf(fp)
	var frame []byte
	var err error
	if tr := t.tr.Load(); tr != nil && tr.DistEnabled() {
		frame, err = appendBatchFrameV((*fp)[:0], batchVersionTraced, src, msgs, compressMin, tr.HLCTick(src), lg, dst)
	} else {
		frame, err = appendBatchFrameV((*fp)[:0], batchVersion, src, msgs, compressMin, 0, lg, dst)
	}
	*fp = frame[:0]
	if err != nil {
		return fmt.Errorf("x10rt: batch encode for %d: %w", dst, err)
	}
	conn, err := t.connTo(dst)
	if err != nil {
		return err
	}
	t.writeq.Add(1)
	conn.mu.Lock()
	_, err = conn.c.Write(frame)
	conn.mu.Unlock()
	t.writeq.Add(-1)
	if err != nil {
		return fmt.Errorf("x10rt: batch send to %d: %w", dst, err)
	}
	for i := range msgs {
		if countable(msgs[i].ID) {
			t.ctrs.add(msgs[i].Class, msgs[i].Bytes)
			t.egress.add(msgs[i].Class, msgs[i].Bytes)
			if lg != nil {
				lg.RecordSend(src, dst, msgs[i].ID, msgs[i].Bytes)
			}
		}
	}
	t.ctrs.addWire(len(frame))
	t.egress.addWire(len(frame))
	lg.RecordWire(src, dst, len(frame))
	return nil
}

// writeCodecBatch encodes msgs as one v4 codec frame and writes it with
// a single scatter-gather syscall. Encoding runs under the connection's
// write lock: type-table ids must be assigned in the exact order frames
// hit the wire or the receiver would bind them to the wrong codecs. Any
// error after encoding drops the connection — its type table may now be
// ahead of what the peer saw, and a fresh connection restarts the
// handshake from scratch.
func (t *TCPTransport) writeCodecBatch(src, dst int, msgs []BatchMsg, compressMin int) (int, error) {
	conn, err := t.connTo(dst)
	if err != nil {
		return 0, err
	}
	lg := t.lg.Load()
	var hlc uint64
	hlcOn := false
	if tr := t.tr.Load(); tr != nil && tr.DistEnabled() {
		hlc, hlcOn = tr.HLCTick(src), true
	}
	fp := getFrameBuf()
	defer putFrameBuf(fp)
	t.writeq.Add(1)
	conn.mu.Lock()
	segs, wireLen, err := appendCodecBatchFrame(fp, src, dst, msgs, compressMin, hlc, hlcOn, &conn.tt, lg)
	if err == nil {
		_, err = segs.WriteTo(conn.c)
	}
	conn.mu.Unlock()
	t.writeq.Add(-1)
	if err != nil {
		t.dropConn(dst, conn)
		return 0, fmt.Errorf("x10rt: codec send to %d: %w", dst, err)
	}
	return wireLen, nil
}

// dropConn closes and forgets an outbound connection whose stream state
// can no longer be trusted (failed write, or a codec frame that died
// after mutating the type table).
func (t *TCPTransport) dropConn(dst int, conn *tcpConn) {
	t.mu.Lock()
	if t.conns[dst] == conn {
		delete(t.conns, dst)
	}
	t.mu.Unlock()
	conn.c.Close()
}

func (t *TCPTransport) connTo(dst int) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if c, ok := t.conns[dst]; ok {
		return c, nil
	}
	nc, err := net.Dial("tcp", t.opts.Addrs[dst])
	if err != nil {
		return nil, fmt.Errorf("x10rt: dial place %d (%s): %w", dst, t.opts.Addrs[dst], err)
	}
	c := &tcpConn{c: nc}
	t.conns[dst] = c
	return c, nil
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		nc, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.read(nc)
	}
}

// read decodes and dispatches messages from one inbound connection.
// Running handlers on the reader goroutine preserves per-link FIFO order
// — for batch frames, the messages of a batch dispatch in batch order
// before the next frame is read. A frame that fails validation or
// decoding terminates the connection: a desynchronized or hostile
// stream cannot poison later messages.
func (t *TCPTransport) read(nc net.Conn) {
	defer t.wg.Done()
	defer nc.Close()
	br := bufio.NewReader(nc)
	// ttr is this connection's receive-side type table, grown by the
	// new-types sections of inbound v4 frames.
	ttr := &typeTableReceiver{}
	for {
		// The header is read and validated here (not via
		// readVersionedFrame) because v5 one-sided frames are parsed
		// streaming: their data section is read directly into the target
		// arena window, never into an intermediate payload slice.
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		if hdr[0] != frameMagic {
			return
		}
		n := binary.BigEndian.Uint32(hdr[2:6])
		if n > MaxFrameSize {
			return
		}
		version := hdr[1]
		if version == frameVersionOneSided {
			if err := t.readOneSided(br, int(n)); err != nil {
				return
			}
			continue
		}
		switch version {
		case frameVersion, batchVersion, batchVersionTraced, batchVersionCodec:
		default:
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		lg := t.lg.Load()
		if version != frameVersion {
			var msgs []wireMsg
			var hlc uint64
			var err error
			switch version {
			case batchVersionTraced:
				msgs, hlc, err = decodeTracedBatchPayloadLG(payload, lg, t.opts.Place)
			case batchVersionCodec:
				msgs, hlc, err = decodeCodecBatchPayloadLG(payload, ttr, lg, t.opts.Place)
			default:
				msgs, err = decodeBatchPayloadLG(payload, lg, t.opts.Place)
			}
			if err != nil {
				return
			}
			if hlc != 0 {
				if tr := t.tr.Load(); tr != nil {
					tr.HLCObserve(t.opts.Place, hlc)
				}
			}
			for i := range msgs {
				t.dispatch(&msgs[i])
			}
			continue
		}
		var t0 int64
		if lg != nil {
			t0 = wireNow()
		}
		m, err := decodeWireMsg(payload)
		if err != nil {
			return
		}
		if lg != nil {
			lg.RecordRecv(t.opts.Place, m.ID, wireNow()-t0)
		}
		t.dispatch(&m)
	}
}

// readOneSided streams one v5 frame off the connection: the op header
// is parsed field by field, then the data section is read exactly once
// — straight into the target arena's byte window when one is offered
// (true zero copy: kernel buffer to congruent fragment), a pooled
// staging buffer otherwise. Landing runs on the reader goroutine, so
// per-link ordering with active messages is exactly frame order.
func (t *TCPTransport) readOneSided(br *bufio.Reader, payloadLen int) error {
	cr := &countingReader{r: br}
	src, op, dataLen, err := parseOneSidedHeader(cr, payloadLen)
	if err != nil {
		return err
	}
	at := t.arenas.Load()
	if at == nil {
		return fmt.Errorf("x10rt: one-sided frame with no arena table attached")
	}
	alive := !t.deaths.isDead(src) && !t.deaths.isDead(t.opts.Place)
	if dataLen > 0 {
		var win []byte
		if alive {
			if win, err = at.RawWindow(t.opts.Place, op); err != nil {
				return err
			}
		}
		if len(win) == dataLen && win != nil {
			if _, err := io.ReadFull(cr, win); err != nil {
				return err
			}
			op.Applied = true
		} else {
			fp := getFrameBuf()
			defer putFrameBuf(fp)
			buf := *fp
			if cap(buf) < dataLen {
				buf = make([]byte, dataLen)
				*fp = buf[:0]
			}
			buf = buf[:dataLen]
			if _, err := io.ReadFull(cr, buf); err != nil {
				return err
			}
			op.Data = buf
		}
	}
	if !alive {
		return nil // frames in flight across a killed link are discarded
	}
	t.ctrs.add(DataClass, op.Bytes)
	if lg := t.lg.Load(); lg != nil {
		// The lane has no deserialization: landing is the memcpy itself.
		lg.RecordRecv(t.opts.Place, HandlerOneSided, 0)
	}
	err = at.Land(src, t.opts.Place, op, func(rep *OneSidedOp) error {
		return t.SendOneSided(t.opts.Place, src, rep)
	})
	var pde *PlaceDeadError
	if errors.As(err, &pde) {
		// A get whose requester died before the reply is normal
		// attrition, not stream corruption: keep the connection.
		return nil
	}
	return err
}

// SendOneSided implements OneSidedSender: op travels as one v5 frame
// whose data section is scatter-gathered straight from the caller's
// buffer (writev) — no staging copy, no handler dispatch at the far
// end. Ordering with Send on the same link is preserved: both serialize
// through the same connection write lock.
func (t *TCPTransport) SendOneSided(src, dst int, op *OneSidedOp) error {
	if src != t.opts.Place {
		return fmt.Errorf("%w: send from %d on endpoint %d", ErrBadPlace, src, t.opts.Place)
	}
	if dst < 0 || dst >= len(t.opts.Addrs) {
		return fmt.Errorf("%w: dst=%d", ErrBadPlace, dst)
	}
	if p := t.deaths.deadEnd(src, dst); p >= 0 {
		return &PlaceDeadError{Place: p}
	}
	lg := t.lg.Load()
	if dst == t.opts.Place {
		at := t.arenas.Load()
		if at == nil {
			return fmt.Errorf("x10rt: one-sided send with no arena table attached")
		}
		wire := OneSidedWireBytes(src, op)
		t.ctrs.add(DataClass, op.Bytes)
		t.egress.add(DataClass, op.Bytes)
		t.ctrs.addWire(wire)
		t.egress.addWire(wire)
		if lg != nil {
			lg.RecordSend(src, dst, HandlerOneSided, op.Bytes)
			lg.RecordWire(src, dst, wire)
			lg.RecordRecv(dst, HandlerOneSided, 0)
		}
		// Landing synchronously is safe here: one-sided ops never run
		// user handlers, so Send's reentrancy rule does not apply.
		return at.Land(src, dst, op, func(rep *OneSidedOp) error {
			return t.SendOneSided(dst, src, rep)
		})
	}
	var data []byte
	if op.Data != nil {
		data = op.Data
	} else if dl := oneSidedDataLen(op); dl > 0 && op.Raw != nil {
		dp := getFrameBuf()
		defer putFrameBuf(dp)
		data = op.Raw((*dp)[:0])
		*dp = data[:0]
	}
	fp := getFrameBuf()
	defer putFrameBuf(fp)
	var t0 int64
	if lg != nil {
		t0 = wireNow()
	}
	head, err := appendOneSidedHeader((*fp)[:0], src, op, len(data))
	if err != nil {
		return err
	}
	*fp = head[:0]
	if lg != nil {
		lg.RecordEncode(src, HandlerOneSided, wireNow()-t0)
	}
	conn, err := t.connTo(dst)
	if err != nil {
		return err
	}
	frameLen := len(head) + len(data)
	bufs := net.Buffers{head}
	if len(data) > 0 {
		bufs = append(bufs, data)
	}
	t.writeq.Add(1)
	conn.mu.Lock()
	_, err = bufs.WriteTo(conn.c)
	conn.mu.Unlock()
	t.writeq.Add(-1)
	if err != nil {
		t.dropConn(dst, conn)
		return fmt.Errorf("x10rt: one-sided send to %d: %w", dst, err)
	}
	t.ctrs.add(DataClass, op.Bytes)
	t.egress.add(DataClass, op.Bytes)
	t.ctrs.addWire(frameLen)
	t.egress.addWire(frameLen)
	if lg != nil {
		lg.RecordSend(src, dst, HandlerOneSided, op.Bytes)
		lg.RecordWire(src, dst, frameLen)
	}
	return nil
}

// AttachArenas implements OneSidedSink.
func (t *TCPTransport) AttachArenas(at *ArenaTable) { t.arenas.Store(at) }

// dispatch counts and runs one inbound message on the caller's
// (reader) goroutine. Receivers do not touch the wire counter: wire
// bytes are attributed to the sender, like all egress accounting.
func (t *TCPTransport) dispatch(m *wireMsg) {
	if t.deaths.isDead(m.Src) || t.deaths.isDead(t.opts.Place) {
		return // frames in flight across a killed link are discarded
	}
	if countable(m.ID) {
		t.ctrs.add(m.Class, m.Bytes)
	}
	if h, ok := t.handlers.lookup(m.ID); ok {
		h(m.Src, t.opts.Place, m.Payload)
	}
}

func (t *TCPTransport) selfDispatch() {
	defer t.wg.Done()
	for m := range t.loop {
		if t.deaths.isDead(t.opts.Place) {
			continue
		}
		if h, ok := t.handlers.lookup(m.ID); ok {
			if lg := t.lg.Load(); lg != nil {
				// Loopback delivery has no deserialization cost.
				lg.RecordRecv(t.opts.Place, m.ID, 0)
			}
			h(m.Src, t.opts.Place, m.Payload)
		}
	}
}

// KillPlace implements PlaceKiller for one endpoint of a mesh: it marks
// p dead in this endpoint's view. Sends to or from p fail fast with a
// *PlaceDeadError, inbound frames from p (and all inbound traffic when
// p is this endpoint itself) are discarded, and — when this endpoint
// survives — every NotifyDeath callback fires exactly once, with this
// endpoint's place as the observer. Mesh-wide death is achieved by
// calling KillPlace(p) on every endpoint, as a failure detector would.
func (t *TCPTransport) KillPlace(p int) error {
	if p < 0 || p >= len(t.opts.Addrs) {
		return fmt.Errorf("%w: p=%d n=%d", ErrBadPlace, p, len(t.opts.Addrs))
	}
	if !t.deaths.kill(p) {
		return nil // already dead
	}
	if p != t.opts.Place {
		// Drop the outbound connection so the peer's reader sees the
		// link sever too.
		t.mu.Lock()
		c := t.conns[p]
		delete(t.conns, p)
		t.mu.Unlock()
		if c != nil {
			c.c.Close()
		}
	}
	if p != t.opts.Place && !t.deaths.isDead(t.opts.Place) {
		t.deaths.notifyOne(p, t.opts.Place)
	}
	return nil
}

// PlaceDead implements PlaceKiller.
func (t *TCPTransport) PlaceDead(p int) bool { return t.deaths.isDead(p) }

// NotifyDeath implements DeathNotifier.
func (t *TCPTransport) NotifyDeath(fn func(dead, observer int)) { t.deaths.subscribe(fn) }

// Stats implements Transport. Counters cover messages sent from and
// received at this endpoint (self-sends are counted once).
func (t *TCPTransport) Stats() Stats { return t.ctrs.snapshot() }

// AttachMetrics implements MetricSource: the traffic counters become
// visible in r under x10rt.msgs.<class> / x10rt.bytes.<class>, plus
// the endpoint's write-queue backpressure gauge.
func (t *TCPTransport) AttachMetrics(r *obs.Registry) {
	t.ctrs.attach(r)
	r.RegisterGauge("x10rt.tcp.writeq", &t.writeq)
}

// AttachTracer wires a tracer into the endpoint so batch frames carry
// HLC stamps (frame version 3) while distributed tracing is enabled.
// Safe to call at any time; nil detaches.
func (t *TCPTransport) AttachTracer(tr *obs.Tracer) { t.tr.Store(tr) }

// PlaceStats implements PlaceMetricSource. A TCP endpoint only carries
// its own place's egress; any other place reports zero here (its own
// endpoint, in its own process, holds its counters).
func (t *TCPTransport) PlaceStats(p int) Stats {
	if p != t.opts.Place {
		return Stats{}
	}
	return t.egress.snapshot()
}

// AttachPlaceMetrics implements PlaceMetricSource.
func (t *TCPTransport) AttachPlaceMetrics(p int, r *obs.Registry) {
	if p == t.opts.Place {
		t.egress.attach(r)
		r.RegisterGauge("x10rt.tcp.writeq", &t.writeq)
	}
}

// AttachWireLedger implements LedgerSink: sends, receives, and
// serialization timings at this endpoint are attributed by
// (handler, link). Safe to call at any time; nil detaches.
func (t *TCPTransport) AttachWireLedger(lg *WireLedger) { t.lg.Store(lg) }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[int]*tcpConn)
	t.mu.Unlock()
	t.listener.Close()
	for _, c := range conns {
		c.c.Close()
	}
	t.loopOnce.Do(func() { close(t.loop) })
	return nil
}
