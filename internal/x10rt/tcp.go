package x10rt

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"apgas/internal/obs"
)

// TCPOptions configures one endpoint of a TCPTransport mesh.
type TCPOptions struct {
	// Place is this endpoint's place index.
	Place int
	// Addrs lists the listen address of every place, indexed by place.
	// Addrs[Place] is the address this endpoint listens on.
	Addrs []string
}

// TCPTransport is a socket-based Transport standing in for X10RT's
// PAMI/sockets backends. Each place runs one endpoint; endpoints connect
// lazily on first send. Payloads are gob-encoded, so applications must
// register concrete payload types with RegisterWireType before sending.
//
// Unlike ChanTransport, a TCPTransport value represents a single place; a
// full mesh consists of one TCPTransport per place (usually one per
// process). Delivery is FIFO per (src, dst) link, as TCP guarantees.
type TCPTransport struct {
	opts     TCPOptions
	handlers *handlerTable
	listener net.Listener
	ctrs     counters
	egress   counters // messages sent by this endpoint only
	deaths   deathState

	mu     sync.Mutex
	conns  map[int]*tcpConn // outbound, keyed by dst
	closed bool

	// tr, when attached, stamps outgoing batch frames with this place's
	// hybrid logical clock (frame version 3) and folds inbound stamps
	// back in — but only while the tracer has distributed tracing
	// enabled; otherwise the wire format is byte-identical to version 2.
	tr atomic.Pointer[obs.Tracer]

	// lg, when attached, attributes every message to its handler and
	// link, with gob encode/decode timings (see WireLedger).
	lg atomic.Pointer[WireLedger]

	// writeq gauges the endpoint's write backpressure: the number of
	// goroutines queued on (or holding) an outbound connection's write
	// lock. A persistently high value means the wire, not the
	// application, is the bottleneck — the ledger's per-link and
	// per-handler accounts then name the traffic responsible.
	writeq obs.Gauge

	loop     chan wireMsg // self-sends, kept FIFO
	wg       sync.WaitGroup
	loopOnce sync.Once
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// wireMsg is the on-the-wire message format. Each message travels as one
// frame (see frame.go) whose payload is a self-contained gob encoding of
// the wireMsg, so a receiver can validate and decode every message
// independently — no shared decoder state to desynchronize.
type wireMsg struct {
	Src     int
	ID      HandlerID
	Class   Class
	Bytes   int
	Payload any
}

// encodeWireMsg renders m as one framed, self-contained gob message.
func encodeWireMsg(m *wireMsg) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return nil, err
	}
	return AppendFrame(nil, payload.Bytes())
}

// appendWireMsg is the pooled-buffer variant of encodeWireMsg used on
// the send hot path: the gob payload is staged in a pooled scratch
// buffer and framed directly into dst, so a steady-state send performs
// no frame-sized allocations of its own.
func appendWireMsg(dst []byte, m *wireMsg) ([]byte, error) {
	payload := getBuf()
	defer putBuf(payload)
	if err := gob.NewEncoder(payload).Encode(m); err != nil {
		return dst, err
	}
	return AppendFrame(dst, payload.Bytes())
}

// decodeWireMsg decodes one frame payload. Frame payloads can arrive from
// another process (or a fuzzer), and gob's decoder reports some malformed
// inputs by panicking; the recover converts any such panic into an error
// so a corrupt peer can only cost its own connection.
func decodeWireMsg(payload []byte) (m wireMsg, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("x10rt: wire decode panic: %v", r)
		}
	}()
	err = gob.NewDecoder(bytes.NewReader(payload)).Decode(&m)
	return m, err
}

// RegisterWireType registers a concrete payload type for gob encoding.
// It must be called (with identical types) in every process of the mesh
// before any Send carrying that type.
func RegisterWireType(v any) { gob.Register(v) }

// NewTCPTransport creates a TCP endpoint and starts its listener and
// dispatcher. The other endpoints need not be up yet; connections are
// established lazily when sending.
func NewTCPTransport(opts TCPOptions) (*TCPTransport, error) {
	if opts.Place < 0 || opts.Place >= len(opts.Addrs) {
		return nil, fmt.Errorf("%w: place=%d addrs=%d", ErrBadPlace, opts.Place, len(opts.Addrs))
	}
	ln, err := net.Listen("tcp", opts.Addrs[opts.Place])
	if err != nil {
		return nil, fmt.Errorf("x10rt: listen %s: %w", opts.Addrs[opts.Place], err)
	}
	return newTCPWithListener(opts, ln), nil
}

// NewLocalTCPMesh creates a fully wired n-place mesh on loopback with
// system-assigned ports. It is intended for tests and single-machine
// multi-endpoint experiments.
func NewLocalTCPMesh(n int) ([]*TCPTransport, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, fmt.Errorf("x10rt: mesh listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mesh := make([]*TCPTransport, n)
	for i := 0; i < n; i++ {
		mesh[i] = newTCPWithListener(TCPOptions{Place: i, Addrs: addrs}, listeners[i])
	}
	return mesh, nil
}

func newTCPWithListener(opts TCPOptions, ln net.Listener) *TCPTransport {
	t := &TCPTransport{
		opts:     opts,
		handlers: newHandlerTable(),
		listener: ln,
		conns:    make(map[int]*tcpConn),
		loop:     make(chan wireMsg, 256),
	}
	t.wg.Add(2)
	go t.accept()
	go t.selfDispatch()
	return t
}

// Addr returns the address this endpoint is actually listening on (useful
// when the configured address had port 0).
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// NumPlaces implements Transport.
func (t *TCPTransport) NumPlaces() int { return len(t.opts.Addrs) }

// Register implements Transport.
func (t *TCPTransport) Register(id HandlerID, h Handler) error {
	return t.handlers.register(id, h)
}

// Send implements Transport. src must equal the endpoint's own place.
func (t *TCPTransport) Send(src, dst int, id HandlerID, payload any, bytes int, class Class) error {
	if src != t.opts.Place {
		return fmt.Errorf("%w: send from %d on endpoint %d", ErrBadPlace, src, t.opts.Place)
	}
	if dst < 0 || dst >= len(t.opts.Addrs) {
		return fmt.Errorf("%w: dst=%d", ErrBadPlace, dst)
	}
	if p := t.deaths.deadEnd(src, dst); p >= 0 {
		return &PlaceDeadError{Place: p}
	}
	m := wireMsg{Src: src, ID: id, Class: class, Bytes: bytes, Payload: payload}
	if dst == t.opts.Place {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		t.loop <- m
		if countable(id) {
			t.ctrs.add(class, bytes)
			t.egress.add(class, bytes)
			// Loopback has no wire; the modeled size stands in so
			// WireBytes remains a complete egress account.
			t.ctrs.addWire(bytes)
			t.egress.addWire(bytes)
			if lg := t.lg.Load(); lg != nil {
				lg.RecordSend(src, dst, id, bytes)
				lg.RecordWire(src, dst, bytes)
			}
		}
		return nil
	}
	lg := t.lg.Load()
	fp := getFrameBuf()
	defer putFrameBuf(fp)
	var t0 int64
	if lg != nil {
		t0 = wireNow()
	}
	frame, err := appendWireMsg((*fp)[:0], &m)
	if lg != nil {
		lg.RecordEncode(src, id, wireNow()-t0)
	}
	*fp = frame[:0]
	if err != nil {
		return fmt.Errorf("x10rt: encode for %d: %w", dst, err)
	}
	conn, err := t.connTo(dst)
	if err != nil {
		return err
	}
	t.writeq.Add(1)
	conn.mu.Lock()
	_, err = conn.c.Write(frame)
	conn.mu.Unlock()
	t.writeq.Add(-1)
	if err != nil {
		return fmt.Errorf("x10rt: send to %d: %w", dst, err)
	}
	if countable(id) {
		t.ctrs.add(class, bytes)
		t.egress.add(class, bytes)
		t.ctrs.addWire(len(frame))
		t.egress.addWire(len(frame))
		if lg != nil {
			lg.RecordSend(src, dst, id, bytes)
			lg.RecordWire(src, dst, len(frame))
		}
	}
	return nil
}

// SendBatch implements BatchSender: msgs travel as one version-2 batch
// frame — a single gob stream, a single write syscall, and at most one
// compression pass — instead of len(msgs) individual frames. Messages
// are delivered at dst in slice order. Wire bytes are counted once for
// the whole frame; the per-class counters still see every message.
// Batches are assembled by the BatchingTransport, which never batches
// telemetry traffic, so the frame as a whole is countable.
func (t *TCPTransport) SendBatch(src, dst int, msgs []BatchMsg, compressMin int) error {
	if len(msgs) == 0 {
		return nil
	}
	if src != t.opts.Place {
		return fmt.Errorf("%w: send from %d on endpoint %d", ErrBadPlace, src, t.opts.Place)
	}
	if dst < 0 || dst >= len(t.opts.Addrs) {
		return fmt.Errorf("%w: dst=%d", ErrBadPlace, dst)
	}
	if p := t.deaths.deadEnd(src, dst); p >= 0 {
		return &PlaceDeadError{Place: p}
	}
	if dst == t.opts.Place {
		for i := range msgs {
			m := &msgs[i]
			if err := t.Send(src, dst, m.ID, m.Payload, m.Bytes, m.Class); err != nil {
				return err
			}
		}
		return nil
	}
	lg := t.lg.Load()
	fp := getFrameBuf()
	defer putFrameBuf(fp)
	var frame []byte
	var err error
	if tr := t.tr.Load(); tr != nil && tr.DistEnabled() {
		frame, err = appendBatchFrameV((*fp)[:0], batchVersionTraced, src, msgs, compressMin, tr.HLCTick(src), lg, dst)
	} else {
		frame, err = appendBatchFrameV((*fp)[:0], batchVersion, src, msgs, compressMin, 0, lg, dst)
	}
	*fp = frame[:0]
	if err != nil {
		return fmt.Errorf("x10rt: batch encode for %d: %w", dst, err)
	}
	conn, err := t.connTo(dst)
	if err != nil {
		return err
	}
	t.writeq.Add(1)
	conn.mu.Lock()
	_, err = conn.c.Write(frame)
	conn.mu.Unlock()
	t.writeq.Add(-1)
	if err != nil {
		return fmt.Errorf("x10rt: batch send to %d: %w", dst, err)
	}
	for i := range msgs {
		if countable(msgs[i].ID) {
			t.ctrs.add(msgs[i].Class, msgs[i].Bytes)
			t.egress.add(msgs[i].Class, msgs[i].Bytes)
			if lg != nil {
				lg.RecordSend(src, dst, msgs[i].ID, msgs[i].Bytes)
			}
		}
	}
	t.ctrs.addWire(len(frame))
	t.egress.addWire(len(frame))
	lg.RecordWire(src, dst, len(frame))
	return nil
}

func (t *TCPTransport) connTo(dst int) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if c, ok := t.conns[dst]; ok {
		return c, nil
	}
	nc, err := net.Dial("tcp", t.opts.Addrs[dst])
	if err != nil {
		return nil, fmt.Errorf("x10rt: dial place %d (%s): %w", dst, t.opts.Addrs[dst], err)
	}
	c := &tcpConn{c: nc}
	t.conns[dst] = c
	return c, nil
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		nc, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.read(nc)
	}
}

// read decodes and dispatches messages from one inbound connection.
// Running handlers on the reader goroutine preserves per-link FIFO order
// — for batch frames, the messages of a batch dispatch in batch order
// before the next frame is read. A frame that fails validation or
// decoding terminates the connection: a desynchronized or hostile
// stream cannot poison later messages.
func (t *TCPTransport) read(nc net.Conn) {
	defer t.wg.Done()
	defer nc.Close()
	br := bufio.NewReader(nc)
	for {
		version, payload, err := readVersionedFrame(br)
		if err != nil {
			return
		}
		lg := t.lg.Load()
		if version == batchVersion || version == batchVersionTraced {
			var msgs []wireMsg
			var hlc uint64
			var err error
			if version == batchVersionTraced {
				msgs, hlc, err = decodeTracedBatchPayloadLG(payload, lg, t.opts.Place)
			} else {
				msgs, err = decodeBatchPayloadLG(payload, lg, t.opts.Place)
			}
			if err != nil {
				return
			}
			if hlc != 0 {
				if tr := t.tr.Load(); tr != nil {
					tr.HLCObserve(t.opts.Place, hlc)
				}
			}
			for i := range msgs {
				t.dispatch(&msgs[i])
			}
			continue
		}
		var t0 int64
		if lg != nil {
			t0 = wireNow()
		}
		m, err := decodeWireMsg(payload)
		if err != nil {
			return
		}
		if lg != nil {
			lg.RecordRecv(t.opts.Place, m.ID, wireNow()-t0)
		}
		t.dispatch(&m)
	}
}

// dispatch counts and runs one inbound message on the caller's
// (reader) goroutine. Receivers do not touch the wire counter: wire
// bytes are attributed to the sender, like all egress accounting.
func (t *TCPTransport) dispatch(m *wireMsg) {
	if t.deaths.isDead(m.Src) || t.deaths.isDead(t.opts.Place) {
		return // frames in flight across a killed link are discarded
	}
	if countable(m.ID) {
		t.ctrs.add(m.Class, m.Bytes)
	}
	if h, ok := t.handlers.lookup(m.ID); ok {
		h(m.Src, t.opts.Place, m.Payload)
	}
}

func (t *TCPTransport) selfDispatch() {
	defer t.wg.Done()
	for m := range t.loop {
		if t.deaths.isDead(t.opts.Place) {
			continue
		}
		if h, ok := t.handlers.lookup(m.ID); ok {
			if lg := t.lg.Load(); lg != nil {
				// Loopback delivery has no deserialization cost.
				lg.RecordRecv(t.opts.Place, m.ID, 0)
			}
			h(m.Src, t.opts.Place, m.Payload)
		}
	}
}

// KillPlace implements PlaceKiller for one endpoint of a mesh: it marks
// p dead in this endpoint's view. Sends to or from p fail fast with a
// *PlaceDeadError, inbound frames from p (and all inbound traffic when
// p is this endpoint itself) are discarded, and — when this endpoint
// survives — every NotifyDeath callback fires exactly once, with this
// endpoint's place as the observer. Mesh-wide death is achieved by
// calling KillPlace(p) on every endpoint, as a failure detector would.
func (t *TCPTransport) KillPlace(p int) error {
	if p < 0 || p >= len(t.opts.Addrs) {
		return fmt.Errorf("%w: p=%d n=%d", ErrBadPlace, p, len(t.opts.Addrs))
	}
	if !t.deaths.kill(p) {
		return nil // already dead
	}
	if p != t.opts.Place {
		// Drop the outbound connection so the peer's reader sees the
		// link sever too.
		t.mu.Lock()
		c := t.conns[p]
		delete(t.conns, p)
		t.mu.Unlock()
		if c != nil {
			c.c.Close()
		}
	}
	if p != t.opts.Place && !t.deaths.isDead(t.opts.Place) {
		t.deaths.notifyOne(p, t.opts.Place)
	}
	return nil
}

// PlaceDead implements PlaceKiller.
func (t *TCPTransport) PlaceDead(p int) bool { return t.deaths.isDead(p) }

// NotifyDeath implements DeathNotifier.
func (t *TCPTransport) NotifyDeath(fn func(dead, observer int)) { t.deaths.subscribe(fn) }

// Stats implements Transport. Counters cover messages sent from and
// received at this endpoint (self-sends are counted once).
func (t *TCPTransport) Stats() Stats { return t.ctrs.snapshot() }

// AttachMetrics implements MetricSource: the traffic counters become
// visible in r under x10rt.msgs.<class> / x10rt.bytes.<class>, plus
// the endpoint's write-queue backpressure gauge.
func (t *TCPTransport) AttachMetrics(r *obs.Registry) {
	t.ctrs.attach(r)
	r.RegisterGauge("x10rt.tcp.writeq", &t.writeq)
}

// AttachTracer wires a tracer into the endpoint so batch frames carry
// HLC stamps (frame version 3) while distributed tracing is enabled.
// Safe to call at any time; nil detaches.
func (t *TCPTransport) AttachTracer(tr *obs.Tracer) { t.tr.Store(tr) }

// PlaceStats implements PlaceMetricSource. A TCP endpoint only carries
// its own place's egress; any other place reports zero here (its own
// endpoint, in its own process, holds its counters).
func (t *TCPTransport) PlaceStats(p int) Stats {
	if p != t.opts.Place {
		return Stats{}
	}
	return t.egress.snapshot()
}

// AttachPlaceMetrics implements PlaceMetricSource.
func (t *TCPTransport) AttachPlaceMetrics(p int, r *obs.Registry) {
	if p == t.opts.Place {
		t.egress.attach(r)
		r.RegisterGauge("x10rt.tcp.writeq", &t.writeq)
	}
}

// AttachWireLedger implements LedgerSink: sends, receives, and
// serialization timings at this endpoint are attributed by
// (handler, link). Safe to call at any time; nil detaches.
func (t *TCPTransport) AttachWireLedger(lg *WireLedger) { t.lg.Store(lg) }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[int]*tcpConn)
	t.mu.Unlock()
	t.listener.Close()
	for _, c := range conns {
		c.c.Close()
	}
	t.loopOnce.Do(func() { close(t.loop) })
	return nil
}
