package x10rt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the wire framing of the TCP transport. Messages used to be
// gob-encoded directly onto the connection as one long stream, which made
// the decoder's state an invisible shared resource: a single corrupt byte
// desynchronized everything after it, and a hostile or buggy peer could
// make the decoder allocate without bound. Frames make every message
// self-contained and bound the damage:
//
//	+-------+---------+----------------------+----------------+
//	| magic | version | length (4 bytes, BE) | payload        |
//	+-------+---------+----------------------+----------------+
//
// The payload is a self-contained gob encoding of one wireMsg (each frame
// carries its own type information). The length field is validated against
// MaxFrameSize before any allocation, so a corrupt header costs at most a
// rejected connection, never memory. The codec is fuzzed (frame_fuzz_test.go)
// with the corpus committed under testdata/fuzz.

const (
	// frameMagic and frameVersion open every frame; a mismatch means the
	// stream is desynchronized or the peer speaks another protocol.
	frameMagic   = 0xA7
	frameVersion = 1
	// frameHeaderSize is magic + version + 4-byte big-endian length.
	frameHeaderSize = 6
	// MaxFrameSize bounds a frame's payload. Runtime control messages are
	// tiny and data payloads are modeled, not shipped, so 16 MiB is
	// generous; anything larger is treated as stream corruption.
	MaxFrameSize = 16 << 20
)

// ErrFrameCorrupt is returned when a frame header fails validation.
var ErrFrameCorrupt = errors.New("x10rt: corrupt frame")

// AppendFrame appends payload wrapped in a frame header to dst and
// returns the extended slice. It fails only when payload exceeds
// MaxFrameSize.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrameSize {
		return dst, fmt.Errorf("%w: payload %d exceeds max %d", ErrFrameCorrupt, len(payload), MaxFrameSize)
	}
	dst = append(dst, frameMagic, frameVersion, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-4:], uint32(len(payload)))
	return append(dst, payload...), nil
}

// DecodeFrame parses one frame from the front of b, returning its payload
// and the remaining bytes. io.ErrUnexpectedEOF signals a truncated but
// otherwise well-formed prefix (read more and retry); ErrFrameCorrupt
// signals an unrecoverable stream.
func DecodeFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < frameHeaderSize {
		return nil, b, io.ErrUnexpectedEOF
	}
	if b[0] != frameMagic {
		return nil, b, fmt.Errorf("%w: bad magic 0x%02x", ErrFrameCorrupt, b[0])
	}
	if b[1] != frameVersion {
		return nil, b, fmt.Errorf("%w: unsupported version %d", ErrFrameCorrupt, b[1])
	}
	n := binary.BigEndian.Uint32(b[2:6])
	if n > MaxFrameSize {
		return nil, b, fmt.Errorf("%w: length %d exceeds max %d", ErrFrameCorrupt, n, MaxFrameSize)
	}
	if uint32(len(b)-frameHeaderSize) < n {
		return nil, b, io.ErrUnexpectedEOF
	}
	return b[frameHeaderSize : frameHeaderSize+int(n)], b[frameHeaderSize+int(n):], nil
}

// ReadFrame reads exactly one frame from r and returns its payload. The
// header is validated before the payload is allocated, so a corrupt
// length can never trigger an oversized allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != frameMagic {
		return nil, fmt.Errorf("%w: bad magic 0x%02x", ErrFrameCorrupt, hdr[0])
	}
	if hdr[1] != frameVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFrameCorrupt, hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: length %d exceeds max %d", ErrFrameCorrupt, n, MaxFrameSize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
