package x10rt

import (
	"bytes"
	"testing"
)

// FuzzDecodeBatch throws arbitrary bytes at the batch payload decoder
// (flags byte, optional DEFLATE envelope, uvarint count, shared gob
// stream). The decoder must never panic — gob's panics are converted to
// errors — and must validate every declared length before allocating,
// so a hostile peer can cost at most its own connection. The committed
// corpus under testdata/fuzz seeds the interesting shapes: a valid
// batch, a torn batch, a zero-frame batch, an oversized length prefix,
// and garbage behind the compressed flag.
func FuzzDecodeBatch(f *testing.F) {
	msgs := []BatchMsg{
		{ID: UserHandlerBase, Payload: wirePayload{Value: 1, Tag: "a"}, Bytes: 16, Class: ControlClass},
		{ID: HandlerFinishCtl, Payload: wirePayload{Value: 2, Tag: "b"}, Bytes: 24, Class: DataClass},
	}
	raw, err := appendBatchFrame(nil, 1, msgs, 0)
	if err != nil {
		f.Fatal(err)
	}
	comp, err := appendBatchFrame(nil, 1, msgs, 1)
	if err != nil {
		f.Fatal(err)
	}
	// Seeds are frame *payloads* (flags + body), the decoder's input.
	f.Add(raw[frameHeaderSize:])
	f.Add(comp[frameHeaderSize:])
	f.Add(raw[frameHeaderSize : len(raw)-5])                   // torn batch
	f.Add([]byte{0x00, 0x00})                                  // zero-frame batch
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})    // oversized length prefix
	f.Add(append([]byte{0x01, 0x40}, []byte("deflate? no")...)) // compressed-bit garbage
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		decoded, err := decodeBatchPayload(payload)
		if err != nil {
			return
		}
		if len(decoded) == 0 {
			t.Fatal("decode succeeded with zero messages")
		}
		if len(decoded) > maxBatchCount {
			t.Fatalf("decoded %d messages, beyond maxBatchCount", len(decoded))
		}
	})
}

// FuzzBatchFrameRoundTrip fuzzes the versioned frame reader with
// arbitrary streams: whatever parses must re-frame to the same
// version/payload, and batch payloads must decode without panicking.
func FuzzBatchFrameRoundTrip(f *testing.F) {
	msgs := []BatchMsg{{ID: UserHandlerBase, Payload: wirePayload{Value: 7}, Bytes: 8, Class: DataClass}}
	frame, err := appendBatchFrame(nil, 0, msgs, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	single, err := encodeWireMsg(&wireMsg{Src: 0, ID: UserHandlerBase, Payload: wirePayload{Value: 7}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(single)
	f.Add([]byte{frameMagic, batchVersion, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		version, payload, err := readVersionedFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("payload %d exceeds MaxFrameSize", len(payload))
		}
		switch version {
		case frameVersion:
			_, _ = decodeWireMsg(payload)
		case batchVersion, batchVersionTraced:
			_, _ = decodeBatchPayload(payload)
		case batchVersionCodec:
			_, _, _ = decodeCodecBatchPayloadLG(payload, &typeTableReceiver{}, nil, 1)
		case frameVersionOneSided:
			cr := &countingReader{r: bytes.NewReader(payload)}
			_, _, _, _ = parseOneSidedHeader(cr, len(payload))
		default:
			t.Fatalf("accepted unknown version %d", version)
		}
	})
}
