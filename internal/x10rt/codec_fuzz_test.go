package x10rt

import (
	"testing"
)

// Fuzz targets for the v4 codec frame: the payload decoder and the
// type-table handshake. Both must never panic on arbitrary bytes — a
// hostile or corrupt peer costs at most its own connection — and the
// handshake must either advance the receiver's table consistently or
// kill the connection with an error, never desynchronize it. The
// committed corpora under testdata/fuzz seed the hostile shapes: torn
// type tables (dense-id violations), truncated raw frames, unknown and
// oversized codec names, out-of-range type refs, compressed garbage.

// fuzzCodecSeedFrame renders msgs as one v4 frame through a fresh
// sender table and returns the payload (flags byte onward), the
// decoder's input.
func fuzzCodecSeedFrame(f *testing.F, msgs []BatchMsg, compressMin int, hlc uint64, hlcOn bool) []byte {
	f.Helper()
	stage := make([]byte, 0, 1024)
	segs, _, err := appendCodecBatchFrame(&stage, 0, 1, msgs, compressMin, hlc, hlcOn, &typeTableSender{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	var frame []byte
	for _, s := range segs {
		frame = append(frame, s...)
	}
	return frame[frameHeaderSize:]
}

// FuzzCodecDecode throws arbitrary bytes at the v4 payload decoder with
// a fresh per-run receiver table (each run is a new connection). Every
// declared length must be validated before allocation and gob panics
// must be converted to errors.
func FuzzCodecDecode(f *testing.F) {
	big := make([]byte, codecZeroCopyMin+512) // spans the zero-copy cut
	for i := range big {
		big[i] = byte(i)
	}
	mixed := []BatchMsg{
		{ID: UserHandlerBase, Payload: uint64(42), Bytes: 8, Class: DataClass},
		{ID: UserHandlerBase + 1, Payload: big, Bytes: len(big), Class: DataClass},
		{ID: HandlerFinishCtl, Payload: wirePayload{Value: 7, Tag: "t"}, Bytes: 16, Class: ControlClass},
		{ID: UserHandlerBase + 2, Payload: []float64{1.5, -2.5}, Bytes: 16, Class: DataClass},
	}
	f.Add(fuzzCodecSeedFrame(f, mixed, 0, 0, false))
	f.Add(fuzzCodecSeedFrame(f, mixed, 1, 99, true)) // compressed + HLC prefix
	valid := fuzzCodecSeedFrame(f, mixed, 0, 0, false)
	f.Add(valid[:len(valid)-5]) // truncated raw frame
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		msgs, _, err := decodeCodecBatchPayloadLG(payload, &typeTableReceiver{}, nil, 1)
		if err != nil {
			return
		}
		if len(msgs) == 0 {
			t.Fatal("decode succeeded with zero messages")
		}
		if len(msgs) > maxBatchCount {
			t.Fatalf("decoded %d messages, beyond maxBatchCount", len(msgs))
		}
	})
}

// FuzzTypeTableHandshake fuzzes the handshake riding frame 1 of a
// connection, then pins the table-consistency invariant: if frame 1
// decodes, a well-formed follow-up frame from a sender aligned with the
// surviving table must round-trip; if frame 1 errors, the connection is
// torn down and no table state leaks. Dense-id violations (torn or
// replayed announcements), unknown codec names, and oversized tables
// must all surface as errors.
func FuzzTypeTableHandshake(f *testing.F) {
	// A valid handshake: announces uint64 as id 1 and uses it.
	f.Add(fuzzCodecSeedFrame(f, []BatchMsg{
		{ID: UserHandlerBase, Payload: uint64(1), Bytes: 8, Class: DataClass},
	}, 0, 0, false))
	// flags=0, src=0, then: torn table (first announcement claims id 2).
	f.Add([]byte{0x00, 0x00, 0x01, 0x02, 0x06, 'u', 'i', 'n', 't', '6', '4', 0x01})
	// Replayed announcement: id 1 bound twice.
	f.Add([]byte{0x00, 0x00, 0x02,
		0x01, 0x06, 'u', 'i', 'n', 't', '6', '4',
		0x01, 0x06, 'u', 'i', 'n', 't', '6', '4', 0x01})
	// Unknown codec name.
	f.Add([]byte{0x00, 0x00, 0x01, 0x01, 0x03, 'z', 'z', 'z', 0x01})
	// Oversized name length (513 > maxTypeNameLen).
	f.Add([]byte{0x00, 0x00, 0x01, 0x01, 0x81, 0x04})
	// Oversized table (declared 16383 announcements > maxTypeTableEntries).
	f.Add([]byte{0x00, 0x00, 0xff, 0x7f})
	// Out-of-range type ref: empty table, record references id 5.
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x01, 0x00, 0x00, 0x05, 0x00})

	f.Fuzz(func(t *testing.T, payload []byte) {
		ttr := &typeTableReceiver{}
		_, _, err := decodeCodecBatchPayloadLG(payload, ttr, nil, 1)
		if err != nil {
			return // connection torn down; no follow-up frames arrive
		}
		if len(ttr.codecs)+1 > maxTypeTableEntries {
			return // table legitimately full; the next announcement must fail
		}
		// Frame 2: the sender's next dense id continues from wherever the
		// fuzzed handshake left the receiver.
		tts := &typeTableSender{next: uint32(len(ttr.codecs))}
		msgs := []BatchMsg{{ID: UserHandlerBase, Payload: uint64(0xd00d), Bytes: 8, Class: DataClass}}
		stage := make([]byte, 0, 256)
		segs, _, err := appendCodecBatchFrame(&stage, 0, 1, msgs, 0, 0, false, tts, nil)
		if err != nil {
			t.Fatalf("post-handshake encode: %v", err)
		}
		var frame []byte
		for _, s := range segs {
			frame = append(frame, s...)
		}
		got, _, err := decodeCodecBatchPayloadLG(frame[frameHeaderSize:], ttr, nil, 1)
		if err != nil {
			t.Fatalf("handshake desynchronized the table: %v", err)
		}
		if len(got) != 1 || got[0].Payload != uint64(0xd00d) {
			t.Fatalf("post-handshake frame decoded to %#v", got)
		}
	})
}
