package x10rt

import "testing"

func TestCountingTransportLinks(t *testing.T) {
	inner, err := NewChanTransport(ChanOptions{Places: 4})
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCountingTransport(inner)
	defer ct.Close()
	if err := ct.Register(UserHandlerBase, func(int, int, any) {}); err != nil {
		t.Fatal(err)
	}
	send := func(src, dst int, class Class) {
		if err := ct.Send(src, dst, UserHandlerBase, nil, 8, class); err != nil {
			t.Fatal(err)
		}
	}
	// Control: 1->0 x3, 2->0 x1, 3->2 x1; self-send 0->0 ignored by fan-in.
	send(1, 0, ControlClass)
	send(1, 0, ControlClass)
	send(1, 0, ControlClass)
	send(2, 0, ControlClass)
	send(3, 2, ControlClass)
	send(0, 0, ControlClass)
	// Data should not pollute control accounting.
	send(3, 0, DataClass)

	srcs, msgs := ct.FanIn(0, ControlClass)
	if srcs != 2 || msgs != 4 {
		t.Errorf("FanIn(0) = %d sources %d msgs, want 2, 4", srcs, msgs)
	}
	if got := ct.MaxInDegree(ControlClass); got != 2 {
		t.Errorf("MaxInDegree = %d, want 2", got)
	}
	if got := ct.MaxOutDegree(ControlClass); got != 1 {
		t.Errorf("MaxOutDegree = %d, want 1", got)
	}
	// Place 1 sends to two distinct destinations.
	send(1, 2, ControlClass)
	if got := ct.MaxOutDegree(ControlClass); got != 2 {
		t.Errorf("MaxOutDegree after extra send = %d, want 2", got)
	}
	ct.Reset()
	srcs, msgs = ct.FanIn(0, ControlClass)
	if srcs != 0 || msgs != 0 {
		t.Errorf("after Reset: %d/%d", srcs, msgs)
	}
	// Underlying aggregate stats still flow through.
	if ct.Stats().TotalMessages() == 0 {
		t.Error("inner stats lost")
	}
}

func TestCountingTransportPropagatesErrors(t *testing.T) {
	inner, err := NewChanTransport(ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCountingTransport(inner)
	defer ct.Close()
	if err := ct.Send(0, 9, UserHandlerBase, nil, 0, DataClass); err == nil {
		t.Error("bad send succeeded")
	}
	// Failed sends must not be counted.
	if _, msgs := ct.FanIn(9, DataClass); msgs != 0 {
		t.Error("failed send counted")
	}
}
