package x10rt

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
)

// This file is the binary payload codec of the wire path: raw
// little-endian encoding for the hot frame shapes (control structs,
// []byte, fixed-width numeric slices), replacing gob on the frames
// where PR 9's wire ledger measured serialization as the dominant
// per-message cost. The codec is strictly an encoding of *values*: the
// mapping from payload type to codec is established per connection by
// the type-table handshake (typetable.go) riding batch-frame v4
// (codecframe.go), so frames carry a small integer where gob carries a
// type descriptor. Types without a registered codec still travel,
// gob-encoded, inside the same v4 frame (type ref 0), so enabling the
// codec never restricts what a transport can carry.
//
// Decode fast paths may alias the frame buffer ([]byte payloads are
// sub-slices of it, never copies). That is safe because the TCP read
// loop allocates a fresh buffer per frame and hands each message to
// its handler before reading the next frame; handlers own their
// payload exactly as they do on the gob path.

// WireCodec is one payload type's binary codec. Encode appends the
// value's encoding to dst and returns the extended slice; Decode
// reconstructs a value from data, which it may alias (see above).
// Decode must validate data fully: it runs on bytes from the network.
type WireCodec struct {
	Name   string
	Encode func(dst []byte, v any) ([]byte, error)
	Decode func(data []byte) (any, error)
}

// codecTables is the immutable registry snapshot; registration
// replaces the whole value so the send/receive hot paths are a single
// atomic load with no lock.
type codecTables struct {
	byType map[reflect.Type]*WireCodec
	byName map[string]*WireCodec
}

var (
	codecMu  sync.Mutex
	codecReg atomic.Pointer[codecTables]
)

func init() {
	codecReg.Store(&codecTables{
		byType: map[reflect.Type]*WireCodec{},
		byName: map[string]*WireCodec{},
	})
	registerBuiltinCodecs()
}

// RegisterWireCodec registers a hand-written binary codec for the
// concrete type of sample. Like RegisterWireType it must be called
// with identical (name, type) pairs in every process of the mesh
// before any Send carrying the type over a codec-enabled transport;
// the receiving side resolves type-table entries by name.
func RegisterWireCodec(sample any, c *WireCodec) {
	if c == nil || c.Name == "" || c.Encode == nil || c.Decode == nil {
		panic("x10rt: RegisterWireCodec needs a name, an encoder and a decoder")
	}
	rt := reflect.TypeOf(sample)
	if rt == nil {
		panic("x10rt: RegisterWireCodec on nil sample")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	old := codecReg.Load()
	if prev, ok := old.byName[c.Name]; ok && prev != c {
		if old.byType[rt] == prev {
			// Re-registration of the same type under the same name is
			// idempotent (packages register from init and tests).
			return
		}
		panic(fmt.Sprintf("x10rt: wire codec name %q already registered", c.Name))
	}
	nt := &codecTables{
		byType: make(map[reflect.Type]*WireCodec, len(old.byType)+1),
		byName: make(map[string]*WireCodec, len(old.byName)+1),
	}
	for k, v := range old.byType {
		nt.byType[k] = v
	}
	for k, v := range old.byName {
		nt.byName[k] = v
	}
	nt.byType[rt] = c
	nt.byName[c.Name] = c
	codecReg.Store(nt)
}

// lookupWireCodec returns the codec for v's concrete type, nil when
// the type has no binary codec (the gob fallback then applies).
func lookupWireCodec(v any) *WireCodec {
	if v == nil {
		return nil
	}
	return codecReg.Load().byType[reflect.TypeOf(v)]
}

// lookupWireCodecByName resolves a type-table announcement.
func lookupWireCodecByName(name string) *WireCodec {
	return codecReg.Load().byName[name]
}

// HasWireCodec reports whether v's concrete type has a registered
// binary codec (diagnostic aid for choosing codec targets).
func HasWireCodec(v any) bool { return lookupWireCodec(v) != nil }

// appendUvarint appends x's uvarint encoding to dst.
func appendUvarint(dst []byte, x uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	return append(dst, b[:binary.PutUvarint(b[:], x)]...)
}

// builtin scalar and slice codecs ------------------------------------

func registerBuiltinCodecs() {
	RegisterWireCodec([]byte(nil), &WireCodec{
		Name:   "bytes",
		Encode: func(dst []byte, v any) ([]byte, error) { return append(dst, v.([]byte)...), nil },
		// Zero copy: the returned slice aliases the frame buffer.
		Decode: func(data []byte) (any, error) { return data, nil },
	})
	RegisterWireCodec("", &WireCodec{
		Name:   "string",
		Encode: func(dst []byte, v any) ([]byte, error) { return append(dst, v.(string)...), nil },
		Decode: func(data []byte) (any, error) { return string(data), nil },
	})
	RegisterWireCodec(false, &WireCodec{
		Name: "bool",
		Encode: func(dst []byte, v any) ([]byte, error) {
			if v.(bool) {
				return append(dst, 1), nil
			}
			return append(dst, 0), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 1 || data[0] > 1 {
				return nil, fmt.Errorf("%w: bad bool", ErrFrameCorrupt)
			}
			return data[0] == 1, nil
		},
	})
	RegisterWireCodec(int(0), &WireCodec{
		Name: "int",
		Encode: func(dst []byte, v any) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(dst, uint64(v.(int))), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 8 {
				return nil, fmt.Errorf("%w: bad int", ErrFrameCorrupt)
			}
			return int(binary.LittleEndian.Uint64(data)), nil
		},
	})
	RegisterWireCodec(int32(0), &WireCodec{
		Name: "int32",
		Encode: func(dst []byte, v any) ([]byte, error) {
			return binary.LittleEndian.AppendUint32(dst, uint32(v.(int32))), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 4 {
				return nil, fmt.Errorf("%w: bad int32", ErrFrameCorrupt)
			}
			return int32(binary.LittleEndian.Uint32(data)), nil
		},
	})
	RegisterWireCodec(int64(0), &WireCodec{
		Name: "int64",
		Encode: func(dst []byte, v any) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(dst, uint64(v.(int64))), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 8 {
				return nil, fmt.Errorf("%w: bad int64", ErrFrameCorrupt)
			}
			return int64(binary.LittleEndian.Uint64(data)), nil
		},
	})
	RegisterWireCodec(uint32(0), &WireCodec{
		Name: "uint32",
		Encode: func(dst []byte, v any) ([]byte, error) {
			return binary.LittleEndian.AppendUint32(dst, v.(uint32)), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 4 {
				return nil, fmt.Errorf("%w: bad uint32", ErrFrameCorrupt)
			}
			return binary.LittleEndian.Uint32(data), nil
		},
	})
	RegisterWireCodec(uint64(0), &WireCodec{
		Name: "uint64",
		Encode: func(dst []byte, v any) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(dst, v.(uint64)), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 8 {
				return nil, fmt.Errorf("%w: bad uint64", ErrFrameCorrupt)
			}
			return binary.LittleEndian.Uint64(data), nil
		},
	})
	RegisterWireCodec(float64(0), &WireCodec{
		Name: "float64",
		Encode: func(dst []byte, v any) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.(float64))), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 8 {
				return nil, fmt.Errorf("%w: bad float64", ErrFrameCorrupt)
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(data)), nil
		},
	})
	registerSliceCodec[uint64]("[]uint64")
	registerSliceCodec[int64]("[]int64")
	registerSliceCodec[uint32]("[]uint32")
	registerSliceCodec[int32]("[]int32")
	registerSliceCodec[float64]("[]float64")
	registerSliceCodec[float32]("[]float32")
	registerSliceCodec[uint16]("[]uint16")
	registerSliceCodec[int16]("[]int16")
}

// fixedWidth is the element constraint of the fixed-width-slice fast
// path: every element encodes as its in-memory width, little-endian.
type fixedWidth interface {
	~int16 | ~uint16 | ~int32 | ~uint32 | ~int64 | ~uint64 | ~float32 | ~float64
}

// registerSliceCodec installs the fixed-width-slice fast path for []T.
func registerSliceCodec[T fixedWidth](name string) {
	var z T
	size := fixedWidthSize(z)
	RegisterWireCodec([]T(nil), &WireCodec{
		Name: name,
		Encode: func(dst []byte, v any) ([]byte, error) {
			return appendFixedSlice(dst, v.([]T)), nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data)%size != 0 {
				return nil, fmt.Errorf("%w: %s payload %d not a multiple of %d",
					ErrFrameCorrupt, name, len(data), size)
			}
			return decodeFixedSlice[T](data), nil
		},
	})
}

func fixedWidthSize[T fixedWidth](T) int {
	var z T
	switch any(z).(type) {
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

func appendFixedSlice[T fixedWidth](dst []byte, s []T) []byte {
	var z T
	switch fixedWidthSize(z) {
	case 2:
		for _, e := range s {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(toBits(e)))
		}
	case 4:
		for _, e := range s {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(toBits(e)))
		}
	default:
		for _, e := range s {
			dst = binary.LittleEndian.AppendUint64(dst, toBits(e))
		}
	}
	return dst
}

func decodeFixedSlice[T fixedWidth](data []byte) []T {
	var z T
	size := fixedWidthSize(z)
	out := make([]T, len(data)/size)
	switch size {
	case 2:
		for i := range out {
			out[i] = fromBits[T](uint64(binary.LittleEndian.Uint16(data[i*2:])))
		}
	case 4:
		for i := range out {
			out[i] = fromBits[T](uint64(binary.LittleEndian.Uint32(data[i*4:])))
		}
	default:
		for i := range out {
			out[i] = fromBits[T](binary.LittleEndian.Uint64(data[i*8:]))
		}
	}
	return out
}

// toBits/fromBits move a fixed-width value through its bit pattern so
// floats round-trip exactly (a numeric conversion would not).
func toBits[T fixedWidth](v T) uint64 {
	switch x := any(v).(type) {
	case float32:
		return uint64(math.Float32bits(x))
	case float64:
		return math.Float64bits(x)
	case int16:
		return uint64(uint16(x))
	case uint16:
		return uint64(x)
	case int32:
		return uint64(uint32(x))
	case uint32:
		return uint64(x)
	case int64:
		return uint64(x)
	default:
		return uint64(any(v).(uint64))
	}
}

func fromBits[T fixedWidth](b uint64) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(math.Float32frombits(uint32(b))).(T)
	case float64:
		return any(math.Float64frombits(b)).(T)
	case int16:
		return any(int16(uint16(b))).(T)
	case uint16:
		return any(uint16(b)).(T)
	case int32:
		return any(int32(uint32(b))).(T)
	case uint32:
		return any(uint32(b)).(T)
	case int64:
		return any(int64(b)).(T)
	default:
		return any(b).(T)
	}
}

// reflection-built struct codecs --------------------------------------

// RegisterBinaryStruct builds and registers a binary codec for a flat
// struct type using a compiled reflection plan: exported fields of
// bool, integer, float, string, []byte, or fixed-width numeric slice
// type, encoded in declaration order (variable-length fields carry a
// uvarint length prefix). It is the convenience path for control
// payloads that want to leave gob without a hand-written codec; truly
// hot types should implement one by hand (see harness/transporttest).
// Returns an error for unsupported shapes — the caller then simply
// stays on the gob fallback.
func RegisterBinaryStruct(sample any) error {
	rt := reflect.TypeOf(sample)
	if rt == nil || rt.Kind() != reflect.Struct {
		return fmt.Errorf("x10rt: RegisterBinaryStruct wants a struct, got %T", sample)
	}
	plan, err := buildStructPlan(rt)
	if err != nil {
		return err
	}
	name := "struct:" + rt.PkgPath() + "." + rt.Name()
	RegisterWireCodec(sample, &WireCodec{
		Name:   name,
		Encode: plan.encode,
		Decode: plan.decode,
	})
	return nil
}

type structPlan struct {
	typ    reflect.Type
	fields []fieldPlan
}

type fieldPlan struct {
	idx  int
	kind reflect.Kind
	// elem is set for slice fields: the element kind and width.
	elem     reflect.Kind
	elemSize int
	typ      reflect.Type
}

func buildStructPlan(rt reflect.Type) (*structPlan, error) {
	p := &structPlan{typ: rt}
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			return nil, fmt.Errorf("x10rt: %s.%s is unexported", rt, f.Name)
		}
		fp := fieldPlan{idx: i, kind: f.Type.Kind(), typ: f.Type}
		switch f.Type.Kind() {
		case reflect.Bool, reflect.String,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
		case reflect.Slice:
			ek := f.Type.Elem().Kind()
			switch ek {
			case reflect.Uint8:
				fp.elemSize = 1
			case reflect.Int16, reflect.Uint16:
				fp.elemSize = 2
			case reflect.Int32, reflect.Uint32, reflect.Float32:
				fp.elemSize = 4
			case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64, reflect.Float64:
				fp.elemSize = 8
			default:
				return nil, fmt.Errorf("x10rt: %s.%s: unsupported slice elem %s", rt, f.Name, ek)
			}
			fp.elem = ek
		default:
			return nil, fmt.Errorf("x10rt: %s.%s: unsupported kind %s", rt, f.Name, f.Type.Kind())
		}
		p.fields = append(p.fields, fp)
	}
	return p, nil
}

func (p *structPlan) encode(dst []byte, v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if rv.Type() != p.typ {
		return dst, fmt.Errorf("x10rt: codec for %s got %T", p.typ, v)
	}
	for _, f := range p.fields {
		fv := rv.Field(f.idx)
		switch f.kind {
		case reflect.Bool:
			if fv.Bool() {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(fv.Int()))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			dst = binary.LittleEndian.AppendUint64(dst, fv.Uint())
		case reflect.Float32, reflect.Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(fv.Float()))
		case reflect.String:
			s := fv.String()
			dst = appendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		case reflect.Slice:
			n := fv.Len()
			dst = appendUvarint(dst, uint64(n))
			for i := 0; i < n; i++ {
				e := fv.Index(i)
				var bits uint64
				switch f.elem {
				case reflect.Float32:
					bits = uint64(math.Float32bits(float32(e.Float())))
				case reflect.Float64:
					bits = math.Float64bits(e.Float())
				case reflect.Int16, reflect.Int32, reflect.Int, reflect.Int64:
					bits = uint64(e.Int())
				default:
					bits = e.Uint()
				}
				switch f.elemSize {
				case 1:
					dst = append(dst, byte(bits))
				case 2:
					dst = binary.LittleEndian.AppendUint16(dst, uint16(bits))
				case 4:
					dst = binary.LittleEndian.AppendUint32(dst, uint32(bits))
				default:
					dst = binary.LittleEndian.AppendUint64(dst, bits)
				}
			}
		}
	}
	return dst, nil
}

func (p *structPlan) decode(data []byte) (any, error) {
	rv := reflect.New(p.typ).Elem()
	for _, f := range p.fields {
		fv := rv.Field(f.idx)
		switch f.kind {
		case reflect.Bool:
			if len(data) < 1 || data[0] > 1 {
				return nil, fmt.Errorf("%w: struct bool", ErrFrameCorrupt)
			}
			fv.SetBool(data[0] == 1)
			data = data[1:]
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if len(data) < 8 {
				return nil, fmt.Errorf("%w: struct int", ErrFrameCorrupt)
			}
			x := int64(binary.LittleEndian.Uint64(data))
			if fv.OverflowInt(x) {
				return nil, fmt.Errorf("%w: struct int overflow", ErrFrameCorrupt)
			}
			fv.SetInt(x)
			data = data[8:]
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if len(data) < 8 {
				return nil, fmt.Errorf("%w: struct uint", ErrFrameCorrupt)
			}
			x := binary.LittleEndian.Uint64(data)
			if fv.OverflowUint(x) {
				return nil, fmt.Errorf("%w: struct uint overflow", ErrFrameCorrupt)
			}
			fv.SetUint(x)
			data = data[8:]
		case reflect.Float32, reflect.Float64:
			if len(data) < 8 {
				return nil, fmt.Errorf("%w: struct float", ErrFrameCorrupt)
			}
			x := math.Float64frombits(binary.LittleEndian.Uint64(data))
			if f.kind == reflect.Float32 && !math.IsNaN(x) && !math.IsInf(x, 0) &&
				math.Abs(x) > math.MaxFloat32 {
				return nil, fmt.Errorf("%w: struct float32 overflow", ErrFrameCorrupt)
			}
			fv.SetFloat(x)
			data = data[8:]
		case reflect.String:
			n, c := binary.Uvarint(data)
			if c <= 0 || n > uint64(len(data)-c) {
				return nil, fmt.Errorf("%w: struct string length", ErrFrameCorrupt)
			}
			fv.SetString(string(data[c : c+int(n)]))
			data = data[c+int(n):]
		case reflect.Slice:
			n, c := binary.Uvarint(data)
			if c <= 0 || n > uint64(len(data)-c)/uint64(f.elemSize) {
				return nil, fmt.Errorf("%w: struct slice length", ErrFrameCorrupt)
			}
			data = data[c:]
			sl := reflect.MakeSlice(f.typ, int(n), int(n))
			for i := 0; i < int(n); i++ {
				var bits uint64
				switch f.elemSize {
				case 1:
					bits = uint64(data[0])
				case 2:
					bits = uint64(binary.LittleEndian.Uint16(data))
				case 4:
					bits = uint64(binary.LittleEndian.Uint32(data))
				default:
					bits = binary.LittleEndian.Uint64(data)
				}
				data = data[f.elemSize:]
				e := sl.Index(i)
				switch f.elem {
				case reflect.Float32:
					e.SetFloat(float64(math.Float32frombits(uint32(bits))))
				case reflect.Float64:
					e.SetFloat(math.Float64frombits(bits))
				case reflect.Int16:
					e.SetInt(int64(int16(uint16(bits))))
				case reflect.Int32:
					e.SetInt(int64(int32(uint32(bits))))
				case reflect.Int, reflect.Int64:
					e.SetInt(int64(bits))
				default:
					e.SetUint(bits)
				}
			}
			fv.Set(sl)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing struct bytes", ErrFrameCorrupt, len(data))
	}
	return rv.Interface(), nil
}
