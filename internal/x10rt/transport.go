// Package x10rt is the runtime transport layer of the APGAS runtime,
// modeled after the X10 Runtime Transport (X10RT) API described in
// "X10 and APGAS at Petascale" (PPoPP 2014), §3.3.
//
// The X10 runtime has a layered structure: the upper layers (finish
// protocols, collectives, RDMA emulation) are written against the small
// transport interface defined here, and concrete transports adapt it to a
// particular interconnect. This package provides two transports:
//
//   - ChanTransport: an in-process transport in which every place is a
//     logical endpoint inside one operating-system process. It supports
//     fault and disorder injection (per-message delay, reordering) so the
//     termination-detection protocols can be exercised under the network
//     reordering hazards that motivated their design.
//   - TCPTransport: a socket transport with gob-serialized active
//     messages, standing in for the PAMI/sockets backends of X10RT.
//
// An implementation is only required to provide basic point-to-point
// active-message primitives; everything else (collectives, RDMA) is
// emulated above this interface, exactly as the paper describes.
package x10rt

import (
	"errors"
	"fmt"
	"sync"

	"apgas/internal/obs"
)

// Handler is an active-message handler. It runs on the destination place's
// dispatcher and receives the source place, the destination place (the
// place the handler is logically executing at), and the message payload.
//
// Handlers must not block indefinitely: they should either complete quickly
// or hand the payload off to a scheduler. They may call Send.
type Handler func(src, dst int, payload any)

// Class labels a message for accounting. The paper's scalability story is
// largely about keeping ControlClass traffic (finish bookkeeping) from
// overwhelming the interconnect, so the transports count classes separately.
type Class uint8

const (
	// DataClass marks application payload messages (asyncs, copies).
	DataClass Class = iota
	// ControlClass marks runtime bookkeeping (finish protocol, clocks).
	ControlClass
	// CollectiveClass marks team/collective traffic.
	CollectiveClass
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case DataClass:
		return "data"
	case ControlClass:
		return "control"
	case CollectiveClass:
		return "collective"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Transport is the point-to-point active message layer connecting places.
//
// All methods are safe for concurrent use. Message delivery between a fixed
// (src, dst) pair is FIFO unless the transport was configured to inject
// reordering; messages from different sources are unordered relative to one
// another, as on a real interconnect.
type Transport interface {
	// NumPlaces reports the number of places connected by this transport.
	NumPlaces() int

	// Register installs a handler under an identifier. Registration must
	// happen before any Send that names the handler, and identifiers must
	// be registered identically at every place (SPMD-style registration,
	// as required by X10RT).
	Register(id HandlerID, h Handler) error

	// Send delivers an active message: handler id runs at dst with the
	// given payload. bytes is the modeled wire size of the message used
	// for bandwidth accounting (in-process transports do not serialize).
	// Send never blocks on the destination's progress.
	Send(src, dst int, id HandlerID, payload any, bytes int, class Class) error

	// Stats returns a snapshot of traffic counters.
	Stats() Stats

	// Close shuts down dispatchers and releases resources. After Close,
	// Send returns ErrClosed.
	Close() error
}

// HandlerID identifies a registered active-message handler.
type HandlerID uint32

// Reserved handler identifiers used by the runtime layers above. User
// applications should register identifiers at UserHandlerBase and above.
const (
	// HandlerSpawn runs a remote activity (core runtime).
	HandlerSpawn HandlerID = iota
	// HandlerFinishCtl carries finish-protocol control traffic.
	HandlerFinishCtl
	// HandlerClockCtl carries clock (dynamic barrier) control traffic.
	HandlerClockCtl
	// HandlerTeamCtl carries emulated collective traffic.
	HandlerTeamCtl
	// HandlerCopy carries RDMA put/get emulation traffic.
	HandlerCopy
	// HandlerGUPS carries remote-atomic-update (GUPS) traffic.
	HandlerGUPS
	// HandlerTelemetry carries cross-place metric collection (the
	// telemetry plane's tree gather). Telemetry messages are excluded
	// from the transport's traffic counters so that *observing* the
	// system does not perturb the numbers being observed — aggregated
	// totals stay exactly equal to the sum of per-place application
	// traffic.
	HandlerTelemetry
	// HandlerOneSided labels the one-sided lane (frame v5) in traffic
	// accounting and the wire ledger. One-sided ops never dispatch to a
	// registered handler — they land directly in an arena — so the id
	// exists purely for attribution.
	HandlerOneSided
	// UserHandlerBase is the first identifier available to applications.
	UserHandlerBase HandlerID = 64
)

// countable reports whether messages to id participate in traffic
// accounting (everything except the telemetry plane's own traffic).
func countable(id HandlerID) bool { return id != HandlerTelemetry }

// ErrClosed is returned by Send after the transport has been closed.
var ErrClosed = errors.New("x10rt: transport closed")

// ErrBadPlace is returned when a place index is out of range.
var ErrBadPlace = errors.New("x10rt: place out of range")

// ErrNoHandler is returned when a message names an unregistered handler.
var ErrNoHandler = errors.New("x10rt: no such handler")

// ErrPlaceDead is the sentinel matched by errors.Is when a Send touches
// a place that has been killed. Concrete failures are *PlaceDeadError
// values wrapping it.
var ErrPlaceDead = errors.New("x10rt: place dead")

// PlaceDeadError is the typed error a transport returns from Send when
// either endpoint of the link has been killed with KillPlace. It
// identifies the dead place and unwraps to ErrPlaceDead.
type PlaceDeadError struct{ Place int }

func (e *PlaceDeadError) Error() string {
	return fmt.Sprintf("x10rt: place %d dead", e.Place)
}

// Unwrap makes errors.Is(err, ErrPlaceDead) hold for any PlaceDeadError.
func (e *PlaceDeadError) Unwrap() error { return ErrPlaceDead }

// DeathNotifier is implemented by transports that can report place
// death upward. Each registered callback fires exactly once per
// (dead place, surviving place) pair: an in-process transport serving n
// places invokes fn once for every surviving observer; a per-place
// endpoint (TCP) invokes fn once with its own place as the observer.
// Callbacks run on a fresh goroutine — never on the goroutine that
// triggered the kill — so they may call back into the transport freely.
type DeathNotifier interface {
	NotifyDeath(fn func(dead, observer int))
}

// PlaceKiller is implemented by transports that support severing a
// place. After KillPlace(p): sends to or from p fail fast with a
// *PlaceDeadError, messages queued for delivery at p are discarded, and
// every DeathNotifier callback fires once per survivor. KillPlace is
// idempotent; killing an out-of-range place returns ErrBadPlace.
type PlaceKiller interface {
	KillPlace(p int) error
	PlaceDead(p int) bool
}

// deathState is the shared kill bookkeeping used by the concrete
// transports: the dead set, the subscribed callbacks, and the
// fire-exactly-once-per-survivor discipline.
type deathState struct {
	mu   sync.Mutex
	fns  []func(dead, observer int)
	dead map[int]bool
}

func (d *deathState) subscribe(fn func(dead, observer int)) {
	d.mu.Lock()
	d.fns = append(d.fns, fn)
	d.mu.Unlock()
}

func (d *deathState) isDead(p int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead[p]
}

// deadEnd returns the dead endpoint of the (src, dst) link, or -1.
func (d *deathState) deadEnd(src, dst int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[dst] {
		return dst
	}
	if d.dead[src] {
		return src
	}
	return -1
}

// kill marks p dead. It reports whether this call was the first (the
// caller then purges queues and notifies); repeated kills are no-ops.
func (d *deathState) kill(p int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead == nil {
		d.dead = make(map[int]bool)
	}
	if d.dead[p] {
		return false
	}
	d.dead[p] = true
	return true
}

// notify fires every callback once per surviving observer in
// [0, places), on a fresh goroutine. The snapshot of callbacks and of
// the dead set is taken under the lock; the calls happen outside it.
func (d *deathState) notify(dead, places int) {
	d.mu.Lock()
	fns := append(d.fns[:0:0], d.fns...)
	survivors := make([]int, 0, places)
	for p := 0; p < places; p++ {
		if p != dead && !d.dead[p] {
			survivors = append(survivors, p)
		}
	}
	d.mu.Unlock()
	if len(fns) == 0 {
		return
	}
	go func() {
		for _, q := range survivors {
			for _, fn := range fns {
				fn(dead, q)
			}
		}
	}()
}

// notifyOne fires every callback once with a single observer — the
// shape a per-place endpoint (TCP) uses, where each endpoint observes a
// death exactly once, as itself.
func (d *deathState) notifyOne(dead, observer int) {
	d.mu.Lock()
	fns := append(d.fns[:0:0], d.fns...)
	d.mu.Unlock()
	if len(fns) == 0 {
		return
	}
	go func() {
		for _, fn := range fns {
			fn(dead, observer)
		}
	}()
}

// Stats is a snapshot of transport traffic counters.
type Stats struct {
	// Messages counts delivered messages by class.
	Messages [3]uint64
	// Bytes counts modeled wire bytes by class.
	Bytes [3]uint64
	// WireBytes counts bytes actually put on the wire, measured after
	// batching and compression. Serializing transports (TCP) report
	// encoded frame bytes here, so WireBytes / TotalBytes is the
	// effective wire amplification (or, under compression and batching,
	// reduction). In-process transports do not serialize and report the
	// modeled byte count. Wire bytes are attributed to the sender only
	// (egress accounting), like PlaceStats.
	WireBytes uint64
}

// TotalMessages returns the message count summed over classes.
func (s Stats) TotalMessages() uint64 {
	return s.Messages[0] + s.Messages[1] + s.Messages[2]
}

// TotalBytes returns the byte count summed over classes.
func (s Stats) TotalBytes() uint64 {
	return s.Bytes[0] + s.Bytes[1] + s.Bytes[2]
}

// Sub returns s - t counter-wise; useful for interval measurements.
func (s Stats) Sub(t Stats) Stats {
	var r Stats
	for i := range s.Messages {
		r.Messages[i] = s.Messages[i] - t.Messages[i]
		r.Bytes[i] = s.Bytes[i] - t.Bytes[i]
	}
	r.WireBytes = s.WireBytes - t.WireBytes
	return r
}

// String formats the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("data=%d/%dB control=%d/%dB collective=%d/%dB wire=%dB",
		s.Messages[DataClass], s.Bytes[DataClass],
		s.Messages[ControlClass], s.Bytes[ControlClass],
		s.Messages[CollectiveClass], s.Bytes[CollectiveClass],
		s.WireBytes)
}

// MetricSource is implemented by transports whose traffic counters can
// be surfaced in an obs.Registry. The runtime attaches the registry of
// its observability layer at construction time; the counters themselves
// are always on, so Stats remains a plain view over the same atomics —
// attaching adds names, not cost.
type MetricSource interface {
	AttachMetrics(r *obs.Registry)
}

// TracerSink is implemented by transports that participate in
// distributed tracing at the wire level: an attached tracer lets them
// stamp outgoing batch frames with the sender's hybrid logical clock
// and fold inbound stamps back in. Decorator transports delegate to
// the layer that actually encodes frames.
type TracerSink interface {
	AttachTracer(tr *obs.Tracer)
}

// PlaceMetricSource is implemented by transports that additionally
// attribute traffic to individual places (by source, i.e. egress
// accounting), so the telemetry plane can aggregate per-place views.
// The sum of PlaceStats over all places equals Stats: every message is
// attributed to exactly one place, its sender.
type PlaceMetricSource interface {
	MetricSource
	// PlaceStats returns the traffic sent by place p (zero Stats when
	// the transport does not carry p's egress, e.g. a remote endpoint).
	PlaceStats(p int) Stats
	// AttachPlaceMetrics registers place p's traffic counters in r under
	// the same canonical x10rt.* names used by AttachMetrics; per-place
	// registries deliberately use unqualified names so snapshots from
	// different places merge by name.
	AttachPlaceMetrics(p int, r *obs.Registry)
}

// BatchMsg is one message inside a pre-batched send. It carries
// everything Send takes except the places, which are per-batch: a batch
// travels one (src, dst) link, preserving per-link FIFO.
type BatchMsg struct {
	ID      HandlerID
	Payload any
	Bytes   int
	Class   Class
}

// BatchSender is implemented by transports that can ship many messages
// for the same (src, dst) link in a single wire operation. The
// BatchingTransport wrapper probes for it: a transport that implements
// SendBatch receives whole coalesced batches (one frame, one write, one
// compression decision); any other transport receives the equivalent
// sequence of Send calls. compressMin enables transparent compression
// of batch payloads at least that large (<= 0 disables it). Messages
// must be delivered in slice order.
type BatchSender interface {
	SendBatch(src, dst int, msgs []BatchMsg, compressMin int) error
}

// Flusher is implemented by transports that buffer sends (the
// BatchingTransport). Flush pushes every message queued at source place
// src out to the underlying transport immediately, overriding the flush
// policy. The runtime calls it at protocol flush points — after a
// finish quiescence snapshot, after a dense-router forward — where
// latency, not bandwidth, is on the critical path. Wrappers that
// decorate a Flusher (counting, chaos) forward Flush to it.
type Flusher interface {
	Flush(src int) error
}

// counters accumulates traffic statistics with atomic updates. The cells
// are obs.Counters so a registry can adopt them by name; x10rt.Stats is
// then a compatibility view over the same registered metrics.
type counters struct {
	msgs  [numClasses]obs.Counter
	bytes [numClasses]obs.Counter
	wire  obs.Counter // on-the-wire bytes (post-batch, post-compression)
}

func (c *counters) add(class Class, bytes int) {
	c.msgs[class].Inc()
	c.bytes[class].Add(uint64(bytes))
}

// addWire records n bytes actually written to the wire. It is kept
// separate from add because a batched frame carries many messages but
// hits the wire once, at the sender only.
func (c *counters) addWire(n int) {
	c.wire.Add(uint64(n))
}

func (c *counters) snapshot() Stats {
	var s Stats
	for i := 0; i < int(numClasses); i++ {
		s.Messages[i] = c.msgs[i].Value()
		s.Bytes[i] = c.bytes[i].Value()
	}
	s.WireBytes = c.wire.Value()
	return s
}

// attach registers the class counters under the canonical names
// x10rt.msgs.<class> and x10rt.bytes.<class>, plus the on-the-wire byte
// counter under x10rt.bytes.wire.
func (c *counters) attach(r *obs.Registry) {
	for i := 0; i < int(numClasses); i++ {
		cls := Class(i).String()
		r.RegisterCounter("x10rt.msgs."+cls, &c.msgs[i])
		r.RegisterCounter("x10rt.bytes."+cls, &c.bytes[i])
	}
	r.RegisterCounter("x10rt.bytes.wire", &c.wire)
}

// handlerTable is a registration table shared by transport implementations.
type handlerTable struct {
	mu sync.RWMutex
	m  map[HandlerID]Handler
}

func newHandlerTable() *handlerTable {
	return &handlerTable{m: make(map[HandlerID]Handler)}
}

func (t *handlerTable) register(id HandlerID, h Handler) error {
	if h == nil {
		return fmt.Errorf("x10rt: nil handler for id %d", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.m[id]; dup {
		return fmt.Errorf("x10rt: handler %d already registered", id)
	}
	t.m[id] = h
	return nil
}

func (t *handlerTable) lookup(id HandlerID) (Handler, bool) {
	t.mu.RLock()
	h, ok := t.m[id]
	t.mu.RUnlock()
	return h, ok
}
