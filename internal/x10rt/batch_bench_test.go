package x10rt

import (
	"sync/atomic"
	"testing"
	"time"
)

// The transport microbenchmarks measure the wire fast path over a real
// local TCP pair: place 0 sends b.N messages to place 1 and waits for
// the last delivery. Reported msgs/s (and ns/op) cover the full
// send-encode-write-read-decode-dispatch pipeline; B/op and allocs/op
// (-benchmem) cover the sender's goroutines only, which is where the
// pooled encoder layer pays off.

type benchMesh struct {
	send      Transport
	delivered atomic.Int64
	done      chan struct{}
	target    int64
}

func newBenchMesh(b *testing.B, batch bool, opts BatchOptions) (*benchMesh, func()) {
	b.Helper()
	mesh, err := NewLocalTCPMesh(2)
	if err != nil {
		b.Fatal(err)
	}
	m := &benchMesh{send: mesh[0]}
	closeAll := func() {
		m.send.Close()
		mesh[1].Close()
	}
	if batch {
		m.send = NewBatchingTransport(mesh[0], opts)
		closeAll = func() {
			m.send.Close() // closes mesh[0]
			mesh[1].Close()
		}
	}
	h := func(src, dst int, payload any) {
		if m.delivered.Add(1) == atomic.LoadInt64(&m.target) {
			close(m.done)
		}
	}
	if err := mesh[1].Register(UserHandlerBase, h); err != nil {
		b.Fatal(err)
	}
	if err := m.send.Register(UserHandlerBase, func(src, dst int, payload any) {}); err != nil {
		b.Fatal(err)
	}
	return m, closeAll
}

func (m *benchMesh) run(b *testing.B, payload any, bytes int, flush func()) {
	m.delivered.Store(0)
	m.done = make(chan struct{})
	atomic.StoreInt64(&m.target, int64(b.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.send.Send(0, 1, UserHandlerBase, payload, bytes, ControlClass); err != nil {
			b.Fatal(err)
		}
	}
	if flush != nil {
		flush()
	}
	select {
	case <-m.done:
	case <-time.After(60 * time.Second):
		b.Fatalf("delivered %d of %d", m.delivered.Load(), b.N)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkTCPSmallFrames is the unbatched baseline for small control
// frames: one gob encoder, one frame, one write syscall per message.
func BenchmarkTCPSmallFrames(b *testing.B) {
	m, closeAll := newBenchMesh(b, false, BatchOptions{})
	defer closeAll()
	m.run(b, wirePayload{Value: 7, Tag: "ctl"}, 24, nil)
}

// BenchmarkTCPSmallFramesBatched is the same workload through the
// BatchingTransport: many messages per frame, one shared gob stream,
// one write syscall per batch. The acceptance gate for the wire fast
// path is >= 3x the unbatched msgs/s (see TestTransportBatchSpeedup).
func BenchmarkTCPSmallFramesBatched(b *testing.B) {
	m, closeAll := newBenchMesh(b, true, BatchOptions{MaxDelay: 200 * time.Microsecond, MaxFrames: 64})
	defer closeAll()
	f := m.send.(*BatchingTransport)
	m.run(b, wirePayload{Value: 7, Tag: "ctl"}, 24, func() { _ = f.Flush(0) })
}

// BenchmarkTCPLargePayload ships 1 MiB payloads unbatched: the framing
// overhead is negligible here, so this guards the bulk path against
// copy and allocation regressions.
func BenchmarkTCPLargePayload(b *testing.B) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	m, closeAll := newBenchMesh(b, false, BatchOptions{})
	defer closeAll()
	b.SetBytes(1 << 20)
	m.run(b, payload, len(payload), nil)
}

// BenchmarkTCPLargePayloadBatched ships 1 MiB payloads through the
// batching wrapper: the byte threshold flushes each payload as its own
// batch, so this measures the wrapper's overhead on bulk traffic.
func BenchmarkTCPLargePayloadBatched(b *testing.B) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	m, closeAll := newBenchMesh(b, true, BatchOptions{MaxDelay: 200 * time.Microsecond})
	defer closeAll()
	f := m.send.(*BatchingTransport)
	b.SetBytes(1 << 20)
	m.run(b, payload, len(payload), func() { _ = f.Flush(0) })
}

func init() {
	RegisterWireType([]byte(nil))
}
