package x10rt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
)

// This file is the batch framing of the wire path: one frame carrying
// many messages for the same (src, dst) link. Batch frames share the
// outer header with single-message frames (frame.go) but use version 2
// and an inner layout of their own:
//
//	+-------+-----------+----------------------+---------------------+
//	| magic | version=2 | length (4 bytes, BE) | flags | body        |
//	+-------+-----------+----------------------+---------------------+
//
//	body (flags&batchFlagCompressed == 0):
//	    uvarint(count) | gob stream of count wireMsg values
//	body (flags&batchFlagCompressed != 0):
//	    uvarint(rawLen) | DEFLATE(uvarint(count) | gob stream)
//
// The messages of one batch share a single gob stream, so type
// descriptors for the payload types are transmitted once per batch
// instead of once per message — for small control frames that is most
// of the encoding cost. rawLen is validated against MaxFrameSize before
// the decompressed body is allocated, preserving the framing layer's
// "corrupt header never costs memory" property. The codec is fuzzed
// (FuzzDecodeBatch) with the corpus committed under testdata/fuzz.

const (
	// batchVersion marks a frame whose payload is a message batch.
	batchVersion = 2
	// batchVersionTraced marks a batch frame stamped with the sender's
	// hybrid logical clock for distributed tracing. Its payload is
	//
	//	uvarint(hlc) | <version-2 payload>
	//
	// i.e. exactly the version-2 layout with an HLC prefix. Emitted only
	// when the sending transport has a tracer with distributed tracing
	// enabled; the version-2 path is byte-identical with tracing off, so
	// old decoders keep working against untraced senders.
	batchVersionTraced = 3
	// batchFlagCompressed marks a DEFLATE-compressed batch body.
	batchFlagCompressed = 0x01
	// maxBatchCount bounds the declared message count of a batch before
	// any decoding work is done. Batches are flushed well below this by
	// the byte and frame limits; a larger count is corruption.
	maxBatchCount = 1 << 20
)

// bufPool recycles scratch buffers across encodes and decodes so the
// steady-state send path does not allocate per batch.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	// Oversized buffers (a 1 MiB payload passed through) are dropped
	// rather than pinned in the pool forever.
	if b.Cap() <= 1<<20 {
		bufPool.Put(b)
	}
}

// framePool recycles encoded-frame byte slices. It pools *[]byte (not
// bytes.Buffer) because frames are built with append: the grown slice
// is stored back, so steady-state encoding reuses one array per P.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if cap(*b) <= 1<<20 {
		framePool.Put(b)
	}
}

// flateWriterPool recycles DEFLATE compressors, whose construction cost
// (window allocation) dwarfs small-batch compression itself.
var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// appendBatchFrame encodes msgs (sent by src) as one batch frame
// appended to dst. Bodies at least compressMin bytes long are DEFLATE
// compressed when that actually shrinks them (compressMin <= 0 never
// compresses). The returned slice aliases dst's array when capacity
// allows.
func appendBatchFrame(dst []byte, src int, msgs []BatchMsg, compressMin int) ([]byte, error) {
	return appendBatchFrameV(dst, batchVersion, src, msgs, compressMin, 0, nil, -1)
}

// appendTracedBatchFrame is appendBatchFrame for a version-3 frame
// carrying the sender's hybrid logical clock.
func appendTracedBatchFrame(dst []byte, src int, msgs []BatchMsg, compressMin int, hlc uint64) ([]byte, error) {
	return appendBatchFrameV(dst, batchVersionTraced, src, msgs, compressMin, hlc, nil, -1)
}

// appendBatchFrameV is the full encoder. lg, when non-nil, receives
// per-message serialization timings (attributed to each message's
// handler — the messages of a batch are separate enc.Encode calls, so
// the split is exact) and the body's pre/post-compression sizes on the
// (src → dstPlace) link.
func appendBatchFrameV(dst []byte, version byte, src int, msgs []BatchMsg, compressMin int, hlc uint64, lg *WireLedger, dstPlace int) ([]byte, error) {
	body := getBuf()
	defer putBuf(body)

	var cnt [binary.MaxVarintLen64]byte
	body.Write(cnt[:binary.PutUvarint(cnt[:], uint64(len(msgs)))])
	enc := gob.NewEncoder(body)
	for i := range msgs {
		m := wireMsg{Src: src, ID: msgs[i].ID, Class: msgs[i].Class, Bytes: msgs[i].Bytes, Payload: msgs[i].Payload}
		var t0 int64
		if lg != nil {
			t0 = wireNow()
		}
		if err := enc.Encode(&m); err != nil {
			return dst, fmt.Errorf("x10rt: batch encode: %w", err)
		}
		if lg != nil {
			lg.RecordEncode(src, msgs[i].ID, wireNow()-t0)
		}
	}

	flags := byte(0)
	payload := body.Bytes()
	var comp *bytes.Buffer
	if compressMin > 0 && body.Len() >= compressMin {
		comp = getBuf()
		defer putBuf(comp)
		comp.Write(cnt[:binary.PutUvarint(cnt[:], uint64(body.Len()))])
		fw := flateWriterPool.Get().(*flate.Writer)
		fw.Reset(comp)
		_, werr := fw.Write(body.Bytes())
		cerr := fw.Close()
		flateWriterPool.Put(fw)
		if werr == nil && cerr == nil && comp.Len() < body.Len() {
			flags |= batchFlagCompressed
			payload = comp.Bytes()
		}
	}
	if lg != nil {
		lg.RecordBatchBody(src, dstPlace, body.Len(), len(payload))
	}

	var hlcPrefix []byte
	var hb [binary.MaxVarintLen64]byte
	if version == batchVersionTraced {
		hlcPrefix = hb[:binary.PutUvarint(hb[:], hlc)]
	}
	total := len(hlcPrefix) + 1 + len(payload)
	if total > MaxFrameSize {
		return dst, fmt.Errorf("%w: batch payload %d exceeds max %d", ErrFrameCorrupt, total, MaxFrameSize)
	}
	dst = append(dst, frameMagic, version, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-4:], uint32(total))
	dst = append(dst, hlcPrefix...)
	dst = append(dst, flags)
	return append(dst, payload...), nil
}

// decodeBatchPayload decodes the payload of a version-2 frame (flags
// byte included) into its messages. Gob reports some malformed inputs
// by panicking; the recover converts any such panic into an error so a
// corrupt peer can only cost its own connection.
func decodeBatchPayload(payload []byte) ([]wireMsg, error) {
	return decodeBatchPayloadLG(payload, nil, 0)
}

// decodeBatchPayloadLG is decodeBatchPayload with cost attribution:
// lg, when non-nil, receives each message's deserialization ns and
// receive count, attributed to its handler at the receiving place.
func decodeBatchPayloadLG(payload []byte, lg *WireLedger, place int) (msgs []wireMsg, err error) {
	defer func() {
		if r := recover(); r != nil {
			msgs, err = nil, fmt.Errorf("x10rt: batch decode panic: %v", r)
		}
	}()
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty batch payload", ErrFrameCorrupt)
	}
	flags, body := payload[0], payload[1:]
	if flags&^byte(batchFlagCompressed) != 0 {
		return nil, fmt.Errorf("%w: unknown batch flags 0x%02x", ErrFrameCorrupt, flags)
	}
	if flags&batchFlagCompressed != 0 {
		rawLen, n := binary.Uvarint(body)
		if n <= 0 || rawLen == 0 || rawLen > MaxFrameSize {
			return nil, fmt.Errorf("%w: bad compressed batch length", ErrFrameCorrupt)
		}
		fr := flate.NewReader(bytes.NewReader(body[n:]))
		raw := make([]byte, 0, rawLen)
		buf := bytes.NewBuffer(raw)
		// +1 so an inflated stream longer than declared is detected
		// rather than silently truncated.
		if _, err := io.Copy(buf, io.LimitReader(fr, int64(rawLen)+1)); err != nil {
			return nil, fmt.Errorf("%w: batch inflate: %v", ErrFrameCorrupt, err)
		}
		if uint64(buf.Len()) != rawLen {
			return nil, fmt.Errorf("%w: batch inflated to %d, declared %d", ErrFrameCorrupt, buf.Len(), rawLen)
		}
		body = buf.Bytes()
	}
	count, n := binary.Uvarint(body)
	if n <= 0 || count > maxBatchCount || count > uint64(len(body)) {
		return nil, fmt.Errorf("%w: bad batch count", ErrFrameCorrupt)
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: zero-message batch", ErrFrameCorrupt)
	}
	dec := gob.NewDecoder(bytes.NewReader(body[n:]))
	msgs = make([]wireMsg, 0, count)
	for i := uint64(0); i < count; i++ {
		var m wireMsg
		var t0 int64
		if lg != nil {
			t0 = wireNow()
		}
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("x10rt: batch message %d: %w", i, err)
		}
		if lg != nil {
			lg.RecordRecv(place, m.ID, wireNow()-t0)
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}

// decodeTracedBatchPayload decodes the payload of a version-3 frame:
// the sender's HLC prefix followed by the version-2 layout.
func decodeTracedBatchPayload(payload []byte) ([]wireMsg, uint64, error) {
	return decodeTracedBatchPayloadLG(payload, nil, 0)
}

// decodeTracedBatchPayloadLG is decodeTracedBatchPayload with cost
// attribution (see decodeBatchPayloadLG).
func decodeTracedBatchPayloadLG(payload []byte, lg *WireLedger, place int) (msgs []wireMsg, hlc uint64, err error) {
	hlc, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: bad batch HLC prefix", ErrFrameCorrupt)
	}
	msgs, err = decodeBatchPayloadLG(payload[n:], lg, place)
	return msgs, hlc, err
}

// readVersionedFrame reads one frame of any supported version from r,
// returning the version byte alongside the payload. It shares the
// validation discipline of ReadFrame: the header is checked before any
// payload allocation.
func readVersionedFrame(r io.Reader) (version byte, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrFrameCorrupt, hdr[0])
	}
	switch hdr[1] {
	case frameVersion, batchVersion, batchVersionTraced, batchVersionCodec, frameVersionOneSided:
	default:
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrFrameCorrupt, hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: length %d exceeds max %d", ErrFrameCorrupt, n, MaxFrameSize)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[1], payload, nil
}
