package x10rt

import (
	"fmt"
	"sync"

	"apgas/internal/obs"
)

// CountingTransport decorates a Transport with per-link accounting:
// message counts per (src, dst, class) link. The finish ablation studies
// use it to measure traffic *shape* — fan-in at a finish home, out-degree
// per place — which is what the Power 775 interconnect cared about, not
// just aggregate counts (§3.1: the default finish "may flood the network
// interface of the place of the activity waiting on the finish").
type CountingTransport struct {
	Transport
	mu    sync.Mutex
	links map[linkKey]uint64
}

type linkKey struct {
	src, dst int
	class    Class
}

// NewCountingTransport wraps inner with per-link accounting.
func NewCountingTransport(inner Transport) *CountingTransport {
	return &CountingTransport{Transport: inner, links: make(map[linkKey]uint64)}
}

// Send implements Transport.
func (t *CountingTransport) Send(src, dst int, id HandlerID, payload any, bytes int, class Class) error {
	if err := t.Transport.Send(src, dst, id, payload, bytes, class); err != nil {
		return err
	}
	if countable(id) {
		t.mu.Lock()
		t.links[linkKey{src, dst, class}]++
		t.mu.Unlock()
	}
	return nil
}

// SendOneSided implements OneSidedSender when the wrapped transport has
// a one-sided lane; the op counts as one DataClass message on its link.
func (t *CountingTransport) SendOneSided(src, dst int, op *OneSidedOp) error {
	os, ok := t.Transport.(OneSidedSender)
	if !ok {
		return fmt.Errorf("x10rt: inner transport has no one-sided lane")
	}
	if err := os.SendOneSided(src, dst, op); err != nil {
		return err
	}
	t.mu.Lock()
	t.links[linkKey{src, dst, DataClass}]++
	t.mu.Unlock()
	return nil
}

// AttachArenas implements OneSidedSink by delegation.
func (t *CountingTransport) AttachArenas(at *ArenaTable) {
	if s, ok := t.Transport.(OneSidedSink); ok {
		s.AttachArenas(at)
	}
}

// AttachMetrics forwards to the wrapped transport when it is a
// MetricSource, so decorating with CountingTransport does not hide the
// inner transport's registry integration.
func (t *CountingTransport) AttachMetrics(r *obs.Registry) {
	if ms, ok := t.Transport.(MetricSource); ok {
		ms.AttachMetrics(r)
	}
}

// PlaceStats forwards to the wrapped transport when it attributes
// traffic per place (zero Stats otherwise).
func (t *CountingTransport) PlaceStats(p int) Stats {
	if ps, ok := t.Transport.(PlaceMetricSource); ok {
		return ps.PlaceStats(p)
	}
	return Stats{}
}

// AttachPlaceMetrics forwards to the wrapped transport when it is a
// PlaceMetricSource.
func (t *CountingTransport) AttachPlaceMetrics(p int, r *obs.Registry) {
	if ps, ok := t.Transport.(PlaceMetricSource); ok {
		ps.AttachPlaceMetrics(p, r)
	}
}

// AttachWireLedger forwards to the wrapped transport when it is a
// LedgerSink, so wire cost attribution pierces the counting decorator.
func (t *CountingTransport) AttachWireLedger(lg *WireLedger) {
	if ls, ok := t.Transport.(LedgerSink); ok {
		ls.AttachWireLedger(lg)
	}
}

// Flush forwards to the wrapped transport when it buffers sends, so
// protocol flush points reach a BatchingTransport hiding below a
// counting decorator.
func (t *CountingTransport) Flush(src int) error {
	if f, ok := t.Transport.(Flusher); ok {
		return f.Flush(src)
	}
	return nil
}

// KillPlace forwards to the wrapped transport when it supports place
// death (error otherwise), so chaos/conformance harnesses can kill
// through a counting decorator.
func (t *CountingTransport) KillPlace(p int) error {
	if pk, ok := t.Transport.(PlaceKiller); ok {
		return pk.KillPlace(p)
	}
	return fmt.Errorf("x10rt: inner transport %T does not support KillPlace", t.Transport)
}

// PlaceDead forwards to the wrapped transport when it is a PlaceKiller
// (false otherwise).
func (t *CountingTransport) PlaceDead(p int) bool {
	if pk, ok := t.Transport.(PlaceKiller); ok {
		return pk.PlaceDead(p)
	}
	return false
}

// NotifyDeath forwards to the wrapped transport when it is a
// DeathNotifier, so death subscriptions pierce the counting decorator.
func (t *CountingTransport) NotifyDeath(fn func(dead, observer int)) {
	if dn, ok := t.Transport.(DeathNotifier); ok {
		dn.NotifyDeath(fn)
	}
}

// Reset clears the per-link counters.
func (t *CountingTransport) Reset() {
	t.mu.Lock()
	t.links = make(map[linkKey]uint64)
	t.mu.Unlock()
}

// FanIn returns, for the given class, the number of distinct sources that
// sent to dst and the total messages dst received.
func (t *CountingTransport) FanIn(dst int, class Class) (sources int, messages uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, n := range t.links {
		if k.dst == dst && k.class == class && k.src != dst {
			sources++
			messages += n
		}
	}
	return sources, messages
}

// MaxOutDegree returns the largest number of distinct destinations any
// single place sent class-traffic to (excluding self-sends).
func (t *CountingTransport) MaxOutDegree(class Class) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	perSrc := make(map[int]int)
	for k := range t.links {
		if k.class == class && k.src != k.dst {
			perSrc[k.src]++
		}
	}
	max := 0
	for _, d := range perSrc {
		if d > max {
			max = d
		}
	}
	return max
}

// MaxInDegree returns the largest number of distinct sources any single
// place received class-traffic from (excluding self-sends).
func (t *CountingTransport) MaxInDegree(class Class) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	perDst := make(map[int]int)
	for k := range t.links {
		if k.class == class && k.src != k.dst {
			perDst[k.dst]++
		}
	}
	max := 0
	for _, d := range perDst {
		if d > max {
			max = d
		}
	}
	return max
}
