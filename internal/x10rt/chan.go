package x10rt

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"apgas/internal/obs"
)

// ChanOptions configures an in-process ChanTransport.
type ChanOptions struct {
	// Places is the number of endpoints; must be >= 1.
	Places int

	// ReorderSeed, when non-zero, enables adversarial reordering of
	// control-class messages: each control message is delayed by a
	// pseudo-random number of delivery slots drawn from a generator
	// seeded with this value. Data-class messages stay FIFO per link.
	// This models the paper's observation that "networks can reorder
	// control messages", the hazard the finish protocols must survive.
	ReorderSeed int64

	// ReorderWindow bounds the reordering delay in messages (default 8).
	ReorderWindow int

	// Latency, when non-nil, is invoked for every message and returns an
	// artificial delivery delay. It can model per-hop interconnect cost
	// (see netsim). A nil Latency delivers immediately.
	Latency func(src, dst, bytes int, class Class) time.Duration

	// MailboxHint pre-sizes per-place mailboxes (default 64).
	MailboxHint int
}

// ChanTransport is an in-process Transport: all places live inside one OS
// process and exchange active messages through per-place unbounded
// mailboxes. Each place has a dispatcher goroutine that runs handlers in
// arrival order. The mailbox is unbounded so that handlers may send
// messages without risking transport deadlock (the X10RT contract).
//
// Reentrancy invariant: Send NEVER runs a handler on the calling
// goroutine, not even for self-sends with no injected Latency — it only
// enqueues, and the destination's dispatcher delivers later. This is a
// correctness requirement, not an optimization. An "immediate delivery"
// fast path (running the handler inline inside Send when Latency is nil)
// would mean a handler that itself Sends could re-enter another handler
// — or itself — on the same stack while holding handler-level locks
// (finish roots, GLB place state), deadlocking or corrupting state; it
// would also reorder a self-send ahead of messages already sitting in
// the mailbox, violating per-link FIFO. TestHandlerSendInsideHandler
// pins both properties.
type ChanTransport struct {
	opts     ChanOptions
	handlers *handlerTable
	places   []*chanEndpoint
	ctrs     counters
	perPlace []counters // egress traffic by source place
	lg       atomic.Pointer[WireLedger]
	arenas   atomic.Pointer[ArenaTable]
	deaths   deathState
	closed   sync.Once
	done     chan struct{}
}

type chanMsg struct {
	src     int
	id      HandlerID
	payload any
	bytes   int
	class   Class
	due     time.Time // zero when no injected latency
	slot    uint64    // reorder slot; delivery sorted by (slot)
	// os, when non-nil, marks a one-sided op riding the mailbox: it
	// lands in an arena instead of dispatching to a handler, but shares
	// the per-link FIFO with active messages.
	os *OneSidedOp
}

// chanEndpoint is one place's receive side: an unbounded FIFO mailbox
// drained by a dedicated dispatcher goroutine.
type chanEndpoint struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []chanMsg
	closed  bool
	dead    bool   // place killed: queued and future messages are discarded
	seq     uint64 // next delivery slot
	reorder *rand.Rand
	window  int
	idleMu  sync.Mutex
	idle    *sync.Cond
	pending int // messages enqueued but not yet fully handled
}

// NewChanTransport creates an in-process transport with opts.Places places.
func NewChanTransport(opts ChanOptions) (*ChanTransport, error) {
	if opts.Places < 1 {
		return nil, fmt.Errorf("x10rt: need at least one place, got %d", opts.Places)
	}
	if opts.ReorderWindow <= 0 {
		opts.ReorderWindow = 8
	}
	if opts.MailboxHint <= 0 {
		opts.MailboxHint = 64
	}
	t := &ChanTransport{
		opts:     opts,
		handlers: newHandlerTable(),
		places:   make([]*chanEndpoint, opts.Places),
		perPlace: make([]counters, opts.Places),
		done:     make(chan struct{}),
	}
	for i := range t.places {
		ep := &chanEndpoint{
			queue:  make([]chanMsg, 0, opts.MailboxHint),
			window: opts.ReorderWindow,
		}
		ep.cond = sync.NewCond(&ep.mu)
		ep.idle = sync.NewCond(&ep.idleMu)
		if opts.ReorderSeed != 0 {
			ep.reorder = rand.New(rand.NewSource(opts.ReorderSeed + int64(i)*7919))
		}
		t.places[i] = ep
		go t.dispatch(i, ep)
	}
	return t, nil
}

// NumPlaces implements Transport.
func (t *ChanTransport) NumPlaces() int { return t.opts.Places }

// Register implements Transport.
func (t *ChanTransport) Register(id HandlerID, h Handler) error {
	return t.handlers.register(id, h)
}

// Send implements Transport. It enqueues and returns: the handler runs
// later on dst's dispatcher goroutine, never on the caller (see the
// reentrancy invariant on ChanTransport).
func (t *ChanTransport) Send(src, dst int, id HandlerID, payload any, bytes int, class Class) error {
	if src < 0 || src >= t.opts.Places || dst < 0 || dst >= t.opts.Places {
		return fmt.Errorf("%w: src=%d dst=%d n=%d", ErrBadPlace, src, dst, t.opts.Places)
	}
	if p := t.deaths.deadEnd(src, dst); p >= 0 {
		return &PlaceDeadError{Place: p}
	}
	if _, ok := t.handlers.lookup(id); !ok {
		return fmt.Errorf("%w: id=%d", ErrNoHandler, id)
	}
	m := chanMsg{src: src, id: id, payload: payload, bytes: bytes, class: class}
	if t.opts.Latency != nil {
		if d := t.opts.Latency(src, dst, bytes, class); d > 0 {
			m.due = time.Now().Add(d)
		}
	}
	ep := t.places[dst]
	// Count the message as pending before it becomes visible to the
	// dispatcher so Quiesce never observes a handled-but-uncounted message.
	ep.idleMu.Lock()
	ep.pending++
	ep.idleMu.Unlock()
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		ep.idleMu.Lock()
		ep.pending--
		if ep.pending == 0 {
			ep.idle.Broadcast()
		}
		ep.idleMu.Unlock()
		return ErrClosed
	}
	m.slot = ep.seq
	ep.seq++
	// Inject reordering for control traffic by pushing the message a
	// random number of slots into the future; data stays FIFO.
	if ep.reorder != nil && class == ControlClass {
		m.slot += uint64(ep.reorder.Intn(ep.window))
	}
	ep.enqueueLocked(m)
	ep.mu.Unlock()
	if countable(id) {
		t.ctrs.add(class, bytes)
		t.perPlace[src].add(class, bytes)
		// In-process transports do not serialize, so the modeled size
		// is also the wire size (see Stats.WireBytes).
		t.ctrs.addWire(bytes)
		t.perPlace[src].addWire(bytes)
		if lg := t.lg.Load(); lg != nil {
			lg.RecordSend(src, dst, id, bytes)
			lg.RecordWire(src, dst, bytes)
		}
	}
	return nil
}

// SendOneSided implements OneSidedSender: op rides dst's mailbox like a
// DataClass message (same pending/quiesce discipline, same per-link
// FIFO, never reordered) but is landed by the arena table on the
// dispatcher — no handler, no serialization. op.Local is the caller's
// typed slice, not a copy: like real RDMA, a put's source buffer must
// stay stable until the enclosing finish completes.
func (t *ChanTransport) SendOneSided(src, dst int, op *OneSidedOp) error {
	if src < 0 || src >= t.opts.Places || dst < 0 || dst >= t.opts.Places {
		return fmt.Errorf("%w: src=%d dst=%d n=%d", ErrBadPlace, src, dst, t.opts.Places)
	}
	if p := t.deaths.deadEnd(src, dst); p >= 0 {
		return &PlaceDeadError{Place: p}
	}
	if t.arenas.Load() == nil {
		return fmt.Errorf("x10rt: one-sided send with no arena table attached")
	}
	wire := OneSidedWireBytes(src, op)
	m := chanMsg{src: src, id: HandlerOneSided, bytes: op.Bytes, class: DataClass, os: op}
	if t.opts.Latency != nil {
		if d := t.opts.Latency(src, dst, wire, DataClass); d > 0 {
			m.due = time.Now().Add(d)
		}
	}
	ep := t.places[dst]
	ep.idleMu.Lock()
	ep.pending++
	ep.idleMu.Unlock()
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		ep.idleMu.Lock()
		ep.pending--
		if ep.pending == 0 {
			ep.idle.Broadcast()
		}
		ep.idleMu.Unlock()
		return ErrClosed
	}
	m.slot = ep.seq
	ep.seq++
	ep.enqueueLocked(m)
	ep.mu.Unlock()
	t.ctrs.add(DataClass, op.Bytes)
	t.perPlace[src].add(DataClass, op.Bytes)
	// The modeled wire cost is the exact v5 frame length, so ledger
	// one-sided rows stay sum-equal with x10rt.bytes.wire.
	t.ctrs.addWire(wire)
	t.perPlace[src].addWire(wire)
	if lg := t.lg.Load(); lg != nil {
		lg.RecordSend(src, dst, HandlerOneSided, op.Bytes)
		lg.RecordWire(src, dst, wire)
	}
	return nil
}

// AttachArenas implements OneSidedSink.
func (t *ChanTransport) AttachArenas(at *ArenaTable) { t.arenas.Store(at) }

// enqueueLocked inserts m keeping the queue sorted by slot (stable FIFO when
// no reordering is injected, since slots are then strictly increasing).
func (ep *chanEndpoint) enqueueLocked(m chanMsg) {
	q := ep.queue
	i := len(q)
	for i > 0 && q[i-1].slot > m.slot {
		i--
	}
	q = append(q, chanMsg{})
	copy(q[i+1:], q[i:])
	q[i] = m
	ep.queue = q
	ep.cond.Signal()
}

func (t *ChanTransport) dispatch(place int, ep *chanEndpoint) {
	for {
		ep.mu.Lock()
		for len(ep.queue) == 0 && !ep.closed {
			ep.cond.Wait()
		}
		if ep.closed && len(ep.queue) == 0 {
			ep.mu.Unlock()
			return
		}
		m := ep.queue[0]
		ep.queue = ep.queue[1:]
		dead := ep.dead
		ep.mu.Unlock()

		if !dead && !m.due.IsZero() {
			if d := time.Until(m.due); d > 0 {
				time.Sleep(d)
			}
		}
		if m.os != nil {
			if at := t.arenas.Load(); at != nil && !dead {
				if lg := t.lg.Load(); lg != nil {
					lg.RecordRecv(place, HandlerOneSided, 0)
				}
				err := at.Land(m.src, place, m.os, func(rep *OneSidedOp) error {
					return t.SendOneSided(place, m.src, rep)
				})
				var pde *PlaceDeadError
				if err != nil && !errors.As(err, &pde) {
					// In-process one-sided ops come from this process's
					// own runtime: a bad offset or arena is a caller bug,
					// not network corruption. A get whose requester died
					// before the reply, however, is normal attrition.
					panic(fmt.Sprintf("x10rt: one-sided land at place %d: %v", place, err))
				}
			}
		} else if h, ok := t.handlers.lookup(m.id); ok && !dead {
			if lg := t.lg.Load(); lg != nil {
				// In-process delivery has no deserialization cost.
				lg.RecordRecv(place, m.id, 0)
			}
			h(m.src, place, m.payload)
		}
		ep.idleMu.Lock()
		ep.pending--
		if ep.pending == 0 {
			ep.idle.Broadcast()
		}
		ep.idleMu.Unlock()
	}
}

// Quiesce blocks until every message enqueued so far at every place has been
// handled. It is a testing aid, not part of the Transport interface; the
// runtime's finish protocols never rely on it.
func (t *ChanTransport) Quiesce() {
	for _, ep := range t.places {
		ep.idleMu.Lock()
		for ep.pending > 0 {
			ep.idle.Wait()
		}
		ep.idleMu.Unlock()
	}
}

// KillPlace implements PlaceKiller: place p is severed from the
// transport. Messages queued for p are discarded, future sends to or
// from p fail with a *PlaceDeadError, and every NotifyDeath callback
// fires once per surviving place (on a fresh goroutine — see
// DeathNotifier). Idempotent.
func (t *ChanTransport) KillPlace(p int) error {
	if p < 0 || p >= t.opts.Places {
		return fmt.Errorf("%w: p=%d n=%d", ErrBadPlace, p, t.opts.Places)
	}
	if !t.deaths.kill(p) {
		return nil // already dead
	}
	ep := t.places[p]
	ep.mu.Lock()
	ep.dead = true
	dropped := len(ep.queue)
	ep.queue = nil
	ep.mu.Unlock()
	if dropped > 0 {
		// The dispatcher would have decremented pending once per handled
		// message; account for the purged ones here so Quiesce stays exact.
		ep.idleMu.Lock()
		ep.pending -= dropped
		if ep.pending == 0 {
			ep.idle.Broadcast()
		}
		ep.idleMu.Unlock()
	}
	t.deaths.notify(p, t.opts.Places)
	return nil
}

// PlaceDead implements PlaceKiller.
func (t *ChanTransport) PlaceDead(p int) bool { return t.deaths.isDead(p) }

// NotifyDeath implements DeathNotifier.
func (t *ChanTransport) NotifyDeath(fn func(dead, observer int)) { t.deaths.subscribe(fn) }

// Stats implements Transport.
func (t *ChanTransport) Stats() Stats { return t.ctrs.snapshot() }

// AttachMetrics implements MetricSource: the traffic counters become
// visible in r under x10rt.msgs.<class> / x10rt.bytes.<class>.
func (t *ChanTransport) AttachMetrics(r *obs.Registry) { t.ctrs.attach(r) }

// PlaceStats implements PlaceMetricSource: traffic sent by place p.
func (t *ChanTransport) PlaceStats(p int) Stats {
	if p < 0 || p >= len(t.perPlace) {
		return Stats{}
	}
	return t.perPlace[p].snapshot()
}

// AttachPlaceMetrics implements PlaceMetricSource.
func (t *ChanTransport) AttachPlaceMetrics(p int, r *obs.Registry) {
	if p >= 0 && p < len(t.perPlace) {
		t.perPlace[p].attach(r)
	}
}

// AttachWireLedger implements LedgerSink: every subsequent send and
// delivery is attributed by (handler, link). Safe to call at any time;
// nil detaches.
func (t *ChanTransport) AttachWireLedger(lg *WireLedger) { t.lg.Store(lg) }

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.closed.Do(func() {
		close(t.done)
		for _, ep := range t.places {
			ep.mu.Lock()
			ep.closed = true
			ep.cond.Broadcast()
			ep.mu.Unlock()
		}
	})
	return nil
}
