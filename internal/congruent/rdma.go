package congruent

import (
	"encoding/binary"
	"fmt"
	"math"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

// This file surfaces the RDMA operations: asynchronous array copies
// (X10's Array.asyncCopy, rewired in the paper to use the Torrent's RDMA
// engine) and the "GUPS" remote atomic update feature used by Global
// RandomAccess. All of them are governed by the caller's enclosing finish
// and execute at the destination without consuming a worker slot.
//
// When the transport has a one-sided lane (chan and TCP meshes), the
// operations travel as (arena, offset, raw bytes) frames that the
// transport lands directly in the destination fragment — no active
// message, no gob, no allocation on the data path. Otherwise they fall
// back to AtDirect closures, the pre-codec model.

// getRequestBytes models the wire size of a get request descriptor on the
// active-message fallback path: arena handle, offset, element count and
// the reply address, 8 bytes each — what an RDMA get actually posts. (The
// one-sided path does not model: the ledger records real frame bytes.)
const getRequestBytes = 32

// xorRequestBytes models one remote-update descriptor on the fallback
// path: index and value.
const xorRequestBytes = 16

// AsyncCopyPut copies src (local data at the calling place) into the
// fragment of dst at place p, starting at dstOff. Termination is tracked
// by the enclosing finish; the call returns immediately.
//
// On the one-sided path src is handed to the transport without a staging
// copy — like any RDMA source buffer it must stay untouched until the
// enclosing finish completes. The active-message fallback copies out.
func AsyncCopyPut[T any](c *core.Ctx, src []T, dst *Array[T], p core.Place, dstOff int) {
	if dstOff < 0 || dstOff+len(src) > dst.perLen {
		panic(fmt.Sprintf("congruent: put [%d,%d) outside fragment of length %d",
			dstOff, dstOff+len(src), dst.perLen))
	}
	var z T
	bytes := int(sizeOf(z)) * len(src)
	if dst.oneSided() {
		op := &x10rt.OneSidedOp{
			Kind:  x10rt.OneSidedPut,
			Arena: dst.arenaID,
			Off:   dstOff,
			Elems: len(src),
			Local: src,
			Bytes: bytes,
		}
		if bs, ok := any(src).([]byte); ok {
			op.Data = bs // byte fragments ride the writev scatter list as-is
		} else {
			op.Raw = func(b []byte) []byte { return appendWireLE(b, src) }
		}
		c.OneSidedSend(p, op)
		return
	}
	// Copy-out at the source side: the in-process substrate must detach
	// from the caller's buffer because, on this path, the caller may
	// reuse it immediately.
	buf := make([]T, len(src))
	copy(buf, src)
	frag := dst.frags // captured; the direct body runs at p
	c.AtDirect(p, bytes, func(cc *core.Ctx) {
		copy(frag[p][dstOff:], buf)
	})
}

// AsyncCopyGet copies [srcOff, srcOff+len(dstBuf)) of src's fragment at
// place p into dstBuf at the calling place. Termination is tracked by the
// enclosing finish. The round trip uses the FINISH_HERE-shaped
// request/response pair internally.
//
// On the one-sided path dstBuf is registered as a transient reply window
// and the response lands in it directly; dstBuf must stay untouched until
// the enclosing finish completes.
func AsyncCopyGet[T any](c *core.Ctx, src *Array[T], p core.Place, srcOff int, dstBuf []T) {
	if srcOff < 0 || srcOff+len(dstBuf) > src.perLen {
		panic(fmt.Sprintf("congruent: get [%d,%d) outside fragment of length %d",
			srcOff, srcOff+len(dstBuf), src.perLen))
	}
	var z T
	bytes := int(sizeOf(z)) * len(dstBuf)
	if src.oneSided() {
		rt := src.alloc.rt
		at := rt.Arenas()
		home := int(c.Place())
		// The reply window is named in the request (ReplyArena), so its
		// id only needs uniqueness, not symmetry; Transient unregisters
		// it when the response put lands.
		rep := arenaFor(dstBuf)
		rep.Transient = true
		replyID := at.Reserve()
		at.Register(home, replyID, rep)
		c.OneSidedSend(p, &x10rt.OneSidedOp{
			Kind:       x10rt.OneSidedGet,
			Arena:      src.arenaID,
			Off:        srcOff,
			Elems:      len(dstBuf),
			ReplyArena: replyID,
		})
		return
	}
	home := c.Place()
	n := len(dstBuf)
	frag := src.frags
	c.AtDirect(p, getRequestBytes, func(cc *core.Ctx) {
		// At the data's home: stage and ship back.
		buf := make([]T, n)
		copy(buf, frag[p][srcOff:srcOff+n])
		cc.AtDirect(home, bytes, func(*core.Ctx) {
			copy(dstBuf, buf)
		})
	})
}

// CopyGet is a blocking get: it performs AsyncCopyGet under an internal
// FINISH_HERE, returning when the data has arrived.
func CopyGet[T any](c *core.Ctx, src *Array[T], p core.Place, srcOff int, dstBuf []T) error {
	return c.FinishPragma(core.PatternHere, func(cc *core.Ctx) {
		AsyncCopyGet(cc, src, p, srcOff, dstBuf)
	})
}

// RemoteXor applies an atomic XOR of val to element idx of arr's fragment
// at place p — the Torrent "GUPS" RDMA feature that Global RandomAccess
// relies on. Updates are atomic per element; termination is tracked by
// the enclosing finish.
func RemoteXor(c *core.Ctx, arr *Array[uint64], p core.Place, idx int, val uint64) {
	if arr.oneSided() {
		c.OneSidedSend(p, &x10rt.OneSidedOp{
			Kind:  x10rt.OneSidedXor,
			Arena: arr.arenaID,
			Off:   idx,
			Val:   val,
		})
		return
	}
	frag := arr.frags
	c.AtDirect(p, xorRequestBytes, func(*core.Ctx) {
		frag[p][idx] ^= val
	})
}

// RemoteAdd applies an atomic ADD of val to element idx of arr's fragment
// at place p — the other remote-update flavor the Torrent exposes
// (fetch-free accumulate). Termination is tracked by the enclosing finish.
func RemoteAdd(c *core.Ctx, arr *Array[uint64], p core.Place, idx int, val uint64) {
	if arr.oneSided() {
		c.OneSidedSend(p, &x10rt.OneSidedOp{
			Kind:  x10rt.OneSidedAdd,
			Arena: arr.arenaID,
			Off:   idx,
			Val:   val,
		})
		return
	}
	frag := arr.frags
	c.AtDirect(p, xorRequestBytes, func(*core.Ctx) {
		frag[p][idx] += val
	})
}

// XorUpdate is one element of a GUPS batch.
type XorUpdate struct {
	Idx int
	Val uint64
}

// RemoteXorBatch applies a batch of XOR updates at place p with a single
// message — the look-ahead batching HPCC RandomAccess permits (up to 1024
// outstanding updates). Termination is tracked by the enclosing finish.
func RemoteXorBatch(c *core.Ctx, arr *Array[uint64], p core.Place, updates []XorUpdate) {
	if len(updates) == 0 {
		return
	}
	if arr.oneSided() {
		// 12-byte wire records: uint32 index, uint64 value.
		data := make([]byte, 0, len(updates)*12)
		for _, u := range updates {
			if u.Idx < 0 || uint64(u.Idx) > math.MaxUint32 {
				panic(fmt.Sprintf("congruent: xor batch index %d outside wire range", u.Idx))
			}
			data = binary.LittleEndian.AppendUint32(data, uint32(u.Idx))
			data = binary.LittleEndian.AppendUint64(data, u.Val)
		}
		c.OneSidedSend(p, &x10rt.OneSidedOp{
			Kind:  x10rt.OneSidedXorBatch,
			Arena: arr.arenaID,
			Elems: len(updates),
			Data:  data,
			Bytes: len(data),
		})
		return
	}
	batch := make([]XorUpdate, len(updates))
	copy(batch, updates)
	frag := arr.frags
	c.AtDirect(p, xorRequestBytes*len(batch), func(*core.Ctx) {
		f := frag[p]
		for _, u := range batch {
			f[u.Idx] ^= u.Val
		}
	})
}
