package congruent

import (
	"fmt"

	"apgas/internal/core"
)

// This file surfaces the RDMA operations: asynchronous array copies
// (X10's Array.asyncCopy, rewired in the paper to use the Torrent's RDMA
// engine) and the "GUPS" remote atomic update feature used by Global
// RandomAccess. All of them are governed by the caller's enclosing finish
// and execute at the destination without consuming a worker slot.

// AsyncCopyPut copies src (local data at the calling place) into the
// fragment of dst at place p, starting at dstOff. Termination is tracked
// by the enclosing finish; the call returns immediately.
func AsyncCopyPut[T any](c *core.Ctx, src []T, dst *Array[T], p core.Place, dstOff int) {
	if dstOff < 0 || dstOff+len(src) > dst.perLen {
		panic(fmt.Sprintf("congruent: put [%d,%d) outside fragment of length %d",
			dstOff, dstOff+len(src), dst.perLen))
	}
	var z T
	bytes := int(sizeOf(z)) * len(src)
	// Copy-out at the source side models the absence of local staging
	// copies poorly only in one direction: the in-process substrate must
	// detach from the caller's buffer because the caller may reuse it
	// immediately, exactly like handing the buffer to the NIC.
	buf := make([]T, len(src))
	copy(buf, src)
	frag := dst.frags // captured; the direct body runs at p
	c.AtDirect(p, bytes, func(cc *core.Ctx) {
		copy(frag[p][dstOff:], buf)
	})
}

// AsyncCopyGet copies [srcOff, srcOff+len(dstBuf)) of src's fragment at
// place p into dstBuf at the calling place. Termination is tracked by the
// enclosing finish. The round trip uses the FINISH_HERE-shaped
// request/response pair internally.
func AsyncCopyGet[T any](c *core.Ctx, src *Array[T], p core.Place, srcOff int, dstBuf []T) {
	if srcOff < 0 || srcOff+len(dstBuf) > src.perLen {
		panic(fmt.Sprintf("congruent: get [%d,%d) outside fragment of length %d",
			srcOff, srcOff+len(dstBuf), src.perLen))
	}
	var z T
	bytes := int(sizeOf(z)) * len(dstBuf)
	home := c.Place()
	n := len(dstBuf)
	frag := src.frags
	c.AtDirect(p, 16, func(cc *core.Ctx) {
		// At the data's home: stage and ship back.
		buf := make([]T, n)
		copy(buf, frag[p][srcOff:srcOff+n])
		cc.AtDirect(home, bytes, func(*core.Ctx) {
			copy(dstBuf, buf)
		})
	})
}

// CopyGet is a blocking get: it performs AsyncCopyGet under an internal
// FINISH_HERE, returning when the data has arrived.
func CopyGet[T any](c *core.Ctx, src *Array[T], p core.Place, srcOff int, dstBuf []T) error {
	return c.FinishPragma(core.PatternHere, func(cc *core.Ctx) {
		AsyncCopyGet(cc, src, p, srcOff, dstBuf)
	})
}

// RemoteXor applies an atomic XOR of val to element idx of arr's fragment
// at place p — the Torrent "GUPS" RDMA feature that Global RandomAccess
// relies on. The update executes on the destination dispatcher; because
// each fragment element is only mutated through that place's dispatcher,
// updates are atomic per place. Termination is tracked by the enclosing
// finish.
func RemoteXor(c *core.Ctx, arr *Array[uint64], p core.Place, idx int, val uint64) {
	frag := arr.frags
	c.AtDirect(p, 16, func(*core.Ctx) {
		frag[p][idx] ^= val
	})
}

// XorUpdate is one element of a GUPS batch.
type XorUpdate struct {
	Idx int
	Val uint64
}

// RemoteXorBatch applies a batch of XOR updates at place p with a single
// message — the look-ahead batching HPCC RandomAccess permits (up to 1024
// outstanding updates). Termination is tracked by the enclosing finish.
func RemoteXorBatch(c *core.Ctx, arr *Array[uint64], p core.Place, updates []XorUpdate) {
	if len(updates) == 0 {
		return
	}
	batch := make([]XorUpdate, len(updates))
	copy(batch, updates)
	frag := arr.frags
	c.AtDirect(p, 16*len(batch), func(*core.Ctx) {
		f := frag[p]
		for _, u := range batch {
			f[u.Idx] ^= u.Val
		}
	})
}
