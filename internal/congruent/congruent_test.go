package congruent

import (
	"testing"
	"testing/quick"

	"apgas/internal/core"
)

func newRT(t *testing.T, places int) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestSymmetricAllocation(t *testing.T) {
	rt := newRT(t, 4)
	a := NewAllocator(rt)
	arr1, err := NewArray[float64](a, 100)
	if err != nil {
		t.Fatal(err)
	}
	arr2, err := NewArray[uint64](a, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric handles: same handle names the fragment at every place.
	if arr1.Handle() == arr2.Handle() {
		t.Error("handles collide")
	}
	if arr1.PerPlaceLen() != 100 || arr1.GlobalLen() != 400 {
		t.Errorf("lengths: per=%d global=%d", arr1.PerPlaceLen(), arr1.GlobalLen())
	}
	for p := 0; p < 4; p++ {
		if len(arr1.Fragment(core.Place(p))) != 100 {
			t.Errorf("fragment %d has length %d", p, len(arr1.Fragment(core.Place(p))))
		}
	}
	reg, pages, allocs := a.Stats()
	wantBytes := uint64(100*8*4 + 50*8*4)
	if reg != wantBytes {
		t.Errorf("registeredBytes = %d, want %d", reg, wantBytes)
	}
	if pages != 2 { // both allocations round up to one 16MB page each
		t.Errorf("largePages = %d, want 2", pages)
	}
	if allocs != 2 {
		t.Errorf("allocations = %d, want 2", allocs)
	}
	if _, err := NewArray[int](a, 0); err == nil {
		t.Error("zero-length allocation accepted")
	}
}

func TestAsyncCopyPut(t *testing.T) {
	rt := newRT(t, 3)
	a := NewAllocator(rt)
	arr, err := NewArray[float64](a, 10)
	if err != nil {
		t.Fatal(err)
	}
	rerr := rt.Run(func(ctx *core.Ctx) {
		src := []float64{1, 2, 3}
		computed := false
		err := ctx.Finish(func(c *core.Ctx) {
			AsyncCopyPut(c, src, arr, 2, 4)
			computed = true // overlap communication with computation
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		if !computed {
			t.Error("local work did not overlap")
		}
		got := arr.Fragment(2)[4:7]
		if got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("fragment = %v", got)
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
}

func TestAsyncCopyPutDetachesBuffer(t *testing.T) {
	rt := newRT(t, 2)
	a := NewAllocator(rt)
	arr, _ := NewArray[int](a, 4)
	err := rt.Run(func(ctx *core.Ctx) {
		src := []int{7, 7, 7, 7}
		err := ctx.Finish(func(c *core.Ctx) {
			AsyncCopyPut(c, src, arr, 1, 0)
			// Reusing the buffer immediately must be safe.
			for i := range src {
				src[i] = -1
			}
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		for i, v := range arr.Fragment(1) {
			if v != 7 {
				t.Errorf("fragment[%d] = %d, want 7", i, v)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCopyGet(t *testing.T) {
	rt := newRT(t, 3)
	a := NewAllocator(rt)
	arr, _ := NewArray[float64](a, 8)
	for i := range arr.Fragment(1) {
		arr.Fragment(1)[i] = float64(i) * 1.5
	}
	err := rt.Run(func(ctx *core.Ctx) {
		buf := make([]float64, 4)
		if err := CopyGet(ctx, arr, 1, 2, buf); err != nil {
			t.Errorf("CopyGet: %v", err)
		}
		for i, v := range buf {
			if want := float64(i+2) * 1.5; v != want {
				t.Errorf("buf[%d] = %v, want %v", i, v, want)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPutBoundsPanics(t *testing.T) {
	rt := newRT(t, 2)
	a := NewAllocator(rt)
	arr, _ := NewArray[int](a, 4)
	err := rt.Run(func(ctx *core.Ctx) {
		ferr := ctx.Finish(func(c *core.Ctx) {
			AsyncCopyPut(c, []int{1, 2, 3}, arr, 1, 2) // 2+3 > 4
		})
		if ferr == nil {
			t.Error("out-of-bounds put did not error")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRemoteXor(t *testing.T) {
	rt := newRT(t, 4)
	a := NewAllocator(rt)
	arr, _ := NewArray[uint64](a, 16)
	err := rt.Run(func(ctx *core.Ctx) {
		err := ctx.Finish(func(c *core.Ctx) {
			// XOR the same value twice plus one marker: net result marker.
			RemoteXor(c, arr, 3, 5, 0xff)
			RemoteXor(c, arr, 3, 5, 0xff)
			RemoteXor(c, arr, 3, 5, 0xabc)
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		if got := arr.Fragment(3)[5]; got != 0xabc {
			t.Errorf("fragment[5] = %#x, want 0xabc", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRemoteXorBatch(t *testing.T) {
	rt := newRT(t, 2)
	a := NewAllocator(rt)
	arr, _ := NewArray[uint64](a, 8)
	err := rt.Run(func(ctx *core.Ctx) {
		err := ctx.Finish(func(c *core.Ctx) {
			RemoteXorBatch(c, arr, 1, []XorUpdate{
				{Idx: 0, Val: 1}, {Idx: 1, Val: 2}, {Idx: 0, Val: 4},
			})
			RemoteXorBatch(c, arr, 1, nil) // no-op
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
		if arr.Fragment(1)[0] != 5 || arr.Fragment(1)[1] != 2 {
			t.Errorf("fragment = %v", arr.Fragment(1)[:2])
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestXorIsInvolution is a property test: applying any batch of updates
// twice restores the array — the invariant HPCC RandomAccess verification
// relies on.
func TestXorIsInvolution(t *testing.T) {
	rt := newRT(t, 4)
	a := NewAllocator(rt)
	arr, _ := NewArray[uint64](a, 32)
	f := func(updates []struct {
		P   uint8
		Idx uint8
		Val uint64
	}) bool {
		ok := true
		err := rt.Run(func(ctx *core.Ctx) {
			apply := func(c *core.Ctx) {
				for _, u := range updates {
					RemoteXor(c, arr, core.Place(int(u.P)%4), int(u.Idx)%32, u.Val)
				}
			}
			_ = ctx.Finish(apply)
			_ = ctx.Finish(apply)
			for p := 0; p < 4; p++ {
				for _, v := range arr.Fragment(core.Place(p)) {
					if v != 0 {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalFragment(t *testing.T) {
	rt := newRT(t, 3)
	a := NewAllocator(rt)
	arr, _ := NewArray[int](a, 5)
	err := rt.Run(func(ctx *core.Ctx) {
		err := ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *core.Ctx) {
					loc := arr.Local(cc)
					for i := range loc {
						loc[i] = int(cc.Place())
					}
				})
			}
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p := 0; p < 3; p++ {
		for i, v := range arr.Fragment(core.Place(p)) {
			if v != p {
				t.Errorf("place %d fragment[%d] = %d", p, i, v)
			}
		}
	}
}

func TestSizeOf(t *testing.T) {
	cases := map[any]uintptr{
		int8(0): 1, uint16(0): 2, float32(0): 4, float64(0): 8,
		complex128(0): 16, uint64(0): 8, false: 1, "": 8,
	}
	for v, want := range cases {
		if got := sizeOf(v); got != want {
			t.Errorf("sizeOf(%T) = %d, want %d", v, got, want)
		}
	}
}

func TestGetBoundsPanics(t *testing.T) {
	rt := newRT(t, 2)
	a := NewAllocator(rt)
	arr, _ := NewArray[float64](a, 4)
	err := rt.Run(func(ctx *core.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds get did not panic")
			}
		}()
		buf := make([]float64, 3)
		AsyncCopyGet(ctx, arr, 1, 2, buf) // 2+3 > 4: panics at the caller
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCopyGetSelfPlace(t *testing.T) {
	rt := newRT(t, 2)
	a := NewAllocator(rt)
	arr, _ := NewArray[int](a, 4)
	for i := range arr.Fragment(0) {
		arr.Fragment(0)[i] = i * 3
	}
	err := rt.Run(func(ctx *core.Ctx) {
		buf := make([]int, 4)
		if err := CopyGet(ctx, arr, 0, 0, buf); err != nil {
			t.Errorf("self get: %v", err)
		}
		for i, v := range buf {
			if v != i*3 {
				t.Errorf("buf[%d] = %d", i, v)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
