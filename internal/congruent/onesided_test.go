package congruent

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

// Tests for the one-sided fast path: congruent RDMA operations riding
// the transport's frame-v5 lane, governed by the enclosing finish.

// TestOneSidedLaneActive pins the wiring: on the default (chan) runtime
// the wire-encodable element types take the one-sided path, []int does
// not (no canonical wire width), and the runtime reports the lane.
func TestOneSidedLaneActive(t *testing.T) {
	rt := newRT(t, 2)
	if !rt.OneSidedEnabled() {
		t.Fatal("chan runtime has no one-sided lane")
	}
	a := NewAllocator(rt)
	u, _ := NewArray[uint64](a, 8)
	b, _ := NewArray[byte](a, 8)
	f, _ := NewArray[float64](a, 8)
	i, _ := NewArray[int](a, 8)
	if !u.oneSided() || !b.oneSided() || !f.oneSided() {
		t.Error("wire-encodable arrays are not one-sided")
	}
	if i.oneSided() {
		t.Error("[]int has no wire form but claims the one-sided lane")
	}
	if u.arenaID == 0 || u.arenaID == b.arenaID {
		t.Errorf("arena ids not distinct/assigned: %d %d", u.arenaID, b.arenaID)
	}
}

// TestOneSidedFinishQuiescence: when a finish governing in-flight
// one-sided puts, gets and remote atomics returns, every landing has
// happened — quiescence covers the v5 lane exactly like activities.
func TestOneSidedFinishQuiescence(t *testing.T) {
	const places, perLen, rounds = 4, 64, 32
	rt := newRT(t, places)
	a := NewAllocator(rt)
	arr, err := NewArray[uint64](a, perLen)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewArray[uint64](a, perLen)
	if err != nil {
		t.Fatal(err)
	}
	rerr := rt.Run(func(ctx *core.Ctx) {
		src := make([]uint64, perLen)
		for i := range src {
			src[i] = uint64(i) + 1
		}
		ferr := ctx.Finish(func(c *core.Ctx) {
			for p := 1; p < places; p++ {
				AsyncCopyPut(c, src, arr, core.Place(p), 0)
				for r := 0; r < rounds; r++ {
					RemoteAdd(c, arr, core.Place(p), 0, 1)
					RemoteXor(c, arr, core.Place(p), 1, 0x5a5a)
				}
			}
		})
		if ferr != nil {
			t.Errorf("put/atomics finish: %v", ferr)
		}
		// After the finish every put and every atomic has landed.
		for p := 1; p < places; p++ {
			frag := arr.Fragment(core.Place(p))
			if v := atomic.LoadUint64(&frag[0]); v != src[0]+rounds {
				t.Errorf("place %d: frag[0] = %d, want %d", p, v, src[0]+rounds)
			}
			if v := atomic.LoadUint64(&frag[1]); v != src[1] { // even xor count cancels
				t.Errorf("place %d: frag[1] = %d, want %d", p, v, src[1])
			}
			for i := 2; i < perLen; i++ {
				if frag[i] != src[i] {
					t.Errorf("place %d: frag[%d] = %d, want %d", p, i, frag[i], src[i])
					break
				}
			}
		}
		// Gets: pull place p's fragment into got's local fragment.
		buf := got.Local(ctx)
		ferr = ctx.Finish(func(c *core.Ctx) {
			AsyncCopyGet(c, arr, 2, 0, buf)
		})
		if ferr != nil {
			t.Errorf("get finish: %v", ferr)
		}
		want := arr.Fragment(2)
		for i := range buf {
			if buf[i] != atomic.LoadUint64(&want[i]) {
				t.Errorf("get buf[%d] = %d, want %d", i, buf[i], want[i])
				break
			}
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
}

// TestOneSidedByteFragments drives the []byte direct-landing shape (the
// zero-copy window) through put and blocking get.
func TestOneSidedByteFragments(t *testing.T) {
	const places, perLen = 3, 256
	rt := newRT(t, places)
	a := NewAllocator(rt)
	arr, err := NewArray[byte](a, perLen)
	if err != nil {
		t.Fatal(err)
	}
	rerr := rt.Run(func(ctx *core.Ctx) {
		src := make([]byte, perLen)
		for i := range src {
			src[i] = byte(i * 7)
		}
		if ferr := ctx.Finish(func(c *core.Ctx) {
			AsyncCopyPut(c, src, arr, 1, 0)
			AsyncCopyPut(c, src[:128], arr, 2, 64)
		}); ferr != nil {
			t.Errorf("finish: %v", ferr)
		}
		for i, v := range arr.Fragment(1) {
			if v != src[i] {
				t.Errorf("place 1 frag[%d] = %d, want %d", i, v, src[i])
				break
			}
		}
		for i := 0; i < 128; i++ {
			if v := arr.Fragment(2)[64+i]; v != src[i] {
				t.Errorf("place 2 frag[%d] = %d, want %d", 64+i, v, src[i])
				break
			}
		}
		buf := make([]byte, 100)
		if err := CopyGet(ctx, arr, 1, 10, buf); err != nil {
			t.Errorf("CopyGet: %v", err)
		}
		for i := range buf {
			if buf[i] != src[10+i] {
				t.Errorf("get buf[%d] = %d, want %d", i, buf[i], src[10+i])
				break
			}
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
}

// killRT builds a runtime over an owned chan transport so the test can
// sever a place mid-run.
func killRT(t *testing.T, places int) (*core.Runtime, *x10rt.ChanTransport) {
	t.Helper()
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatalf("NewChanTransport: %v", err)
	}
	rt, err := core.NewRuntime(core.Config{
		Places: places, Transport: tr, OwnTransport: true, CheckPatterns: true,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt, tr
}

// TestOneSidedPlaceDeath: one-sided ops against a dead place surface
// ErrPlaceDead on the governing finish instead of hanging, and survivor
// traffic still lands.
func TestOneSidedPlaceDeath(t *testing.T) {
	const places, victim = 3, 2
	rt, tr := killRT(t, places)
	a := NewAllocator(rt)
	arr, err := NewArray[uint64](a, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !arr.oneSided() {
		t.Fatal("array is not on the one-sided lane")
	}
	done := make(chan error, 1)
	go func() {
		done <- rt.Run(func(ctx *core.Ctx) {
			if err := tr.KillPlace(victim); err != nil {
				t.Errorf("KillPlace: %v", err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for !rt.PlaceDead(victim) {
				if time.Now().After(deadline) {
					t.Error("runtime never observed the death")
					return
				}
				time.Sleep(time.Millisecond)
			}
			src := make([]uint64, 16)
			ferr := ctx.Finish(func(c *core.Ctx) {
				AsyncCopyPut(c, src, arr, victim, 0)
				RemoteAdd(c, arr, victim, 0, 1)
			})
			if !errors.Is(ferr, core.ErrPlaceDead) {
				t.Errorf("finish to dead place: err = %v, want ErrPlaceDead", ferr)
			}
			// The survivor link still works.
			ferr = ctx.Finish(func(c *core.Ctx) {
				RemoteAdd(c, arr, 1, 3, 41)
				RemoteAdd(c, arr, 1, 3, 1)
			})
			if ferr != nil {
				t.Errorf("survivor finish: %v", ferr)
			}
			if v := atomic.LoadUint64(&arr.Fragment(1)[3]); v != 42 {
				t.Errorf("survivor frag[3] = %d, want 42", v)
			}
		})
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, core.ErrPlaceDead) {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung: one-sided death not surfaced to the finish")
	}
}

// TestOneSidedSelfOps: self-directed puts, gets and atomics still ride
// the lane (the paper routes even intra-octant traffic through PAMI)
// under the AtDirect-style local finish pair.
func TestOneSidedSelfOps(t *testing.T) {
	rt := newRT(t, 2)
	a := NewAllocator(rt)
	arr, err := NewArray[uint64](a, 8)
	if err != nil {
		t.Fatal(err)
	}
	rerr := rt.Run(func(ctx *core.Ctx) {
		src := []uint64{9, 8, 7}
		if ferr := ctx.Finish(func(c *core.Ctx) {
			AsyncCopyPut(c, src, arr, c.Place(), 1) // self put
			RemoteAdd(c, arr, c.Place(), 0, 5)      // self atomic
		}); ferr != nil {
			t.Errorf("self finish: %v", ferr)
		}
		frag := arr.Local(ctx)
		if atomic.LoadUint64(&frag[0]) != 5 || frag[1] != 9 || frag[2] != 8 || frag[3] != 7 {
			t.Errorf("self ops: frag = %v", frag[:4])
		}
		buf := make([]uint64, 3)
		if err := CopyGet(ctx, arr, ctx.Place(), 1, buf); err != nil {
			t.Errorf("self CopyGet: %v", err)
		}
		if fmt.Sprint(buf) != fmt.Sprint(src) {
			t.Errorf("self get = %v, want %v", buf, src)
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
}
