// Package congruent implements the congruent memory allocator and the RDMA
// surface of §3.3 of "X10 and APGAS at Petascale".
//
// On the Power 775, RDMA and hardware collectives require memory segments
// registered with the network hardware, and the initiating task must know
// the effective address of both ends. X10's congruent allocator returns
// registered segments backed by large pages, outside the control of the
// garbage collector, and — when every place performs the same allocation
// sequence — at the same address in every place ("symmetric allocation"),
// so a place can compute a remote address from its own.
//
// This package reproduces that contract on the in-process substrate: an
// Allocator hands out Arrays identified by a symmetric handle (the analogue
// of the congruent address), with one backing slice per place and
// registration/large-page bookkeeping for the experiments. Remote
// operations — AsyncCopy puts/gets and GUPS-style remote atomic XOR — run
// on the destination's message dispatcher without occupying a worker
// (core.Ctx.AtDirect), modeling transfers that bypass the remote CPU. As
// in X10, their termination is tracked by the enclosing finish, which is
// what makes overlapping communication with computation natural:
//
//	finish { AsyncCopyPut(...); computeLocally(); }
package congruent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"apgas/internal/core"
)

// PageSize is the modeled large-page size (16 MB, the Power 775
// configuration that keeps the Torrent's TLB pressure low).
const PageSize = 16 << 20

// Allocator hands out congruent (symmetric) arrays. Allocations must be
// performed in the same order with the same sizes at every place — the
// "same allocation sequence" rule of the paper — which the handle-based
// API enforces by construction: one NewArray call allocates at all places.
type Allocator struct {
	rt *core.Runtime

	mu         sync.Mutex
	nextHandle uint64

	registeredBytes atomic.Uint64
	largePages      atomic.Uint64
	allocations     atomic.Uint64
}

// NewAllocator creates an allocator for the runtime.
func NewAllocator(rt *core.Runtime) *Allocator {
	return &Allocator{rt: rt}
}

// Stats reports allocator bookkeeping: total registered bytes across all
// places, the number of modeled large pages backing them, and the number
// of symmetric allocations performed.
func (a *Allocator) Stats() (registeredBytes, largePages, allocations uint64) {
	return a.registeredBytes.Load(), a.largePages.Load(), a.allocations.Load()
}

// Array is a congruent array of T: one fragment of perPlaceLen elements
// per place, all reachable through the same symmetric handle. It supports
// the RDMA operations of this package; for everything else it behaves like
// ordinary per-place data, mirroring the paper's observation that
// congruent arrays "do not behave differently from regular arrays after
// their initial allocation".
type Array[T any] struct {
	alloc  *Allocator
	handle uint64
	frags  [][]T
	perLen int

	// arenaID is the symmetric one-sided window id (x10rt.ArenaTable);
	// 0 when the runtime has no arena registry. localOnly marks element
	// types without a little-endian wire form: their windows serve
	// in-process transports only and the RDMA operations use the
	// active-message path.
	arenaID   uint64
	localOnly bool
}

// NewArray performs one symmetric allocation: a fragment of perPlaceLen
// elements of T at every place, registered with the (modeled) network
// hardware and backed by (modeled) large pages.
func NewArray[T any](a *Allocator, perPlaceLen int) (*Array[T], error) {
	if perPlaceLen <= 0 {
		return nil, fmt.Errorf("congruent: perPlaceLen=%d, need > 0", perPlaceLen)
	}
	a.mu.Lock()
	a.nextHandle++
	h := a.nextHandle
	a.mu.Unlock()

	n := a.rt.NumPlaces()
	arr := &Array[T]{alloc: a, handle: h, perLen: perPlaceLen, frags: make([][]T, n)}
	var z T
	elem := int(sizeOf(z))
	for p := 0; p < n; p++ {
		arr.frags[p] = make([]T, perPlaceLen)
	}
	bytes := uint64(elem) * uint64(perPlaceLen) * uint64(n)
	a.registeredBytes.Add(bytes)
	a.largePages.Add((bytes + PageSize - 1) / PageSize)
	a.allocations.Add(1)
	registerArenas(arr)
	return arr, nil
}

// Handle returns the symmetric handle (the analogue of the congruent
// address, identical at every place).
func (arr *Array[T]) Handle() uint64 { return arr.handle }

// PerPlaceLen returns the fragment length at each place.
func (arr *Array[T]) PerPlaceLen() int { return arr.perLen }

// Local returns the calling place's fragment.
func (arr *Array[T]) Local(c *core.Ctx) []T { return arr.frags[c.Place()] }

// Fragment returns place p's fragment directly. Use it for initialization
// and post-run verification; during a computation, places should touch
// remote fragments only through the RDMA operations.
func (arr *Array[T]) Fragment(p core.Place) []T { return arr.frags[p] }

// GlobalLen returns the total element count across places.
func (arr *Array[T]) GlobalLen() int { return arr.perLen * len(arr.frags) }

// sizeOf models element wire size without importing unsafe.
func sizeOf(v any) uintptr {
	switch v.(type) {
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int64, uint64, float64, int, uint, uintptr:
		return 8
	case complex64:
		return 8
	case complex128:
		return 16
	default:
		return 8
	}
}
