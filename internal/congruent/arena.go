package congruent

import (
	"encoding/binary"
	"math"
	"sync/atomic"

	"apgas/internal/x10rt"
)

// This file binds congruent arrays to the transport's one-sided lane:
// every NewArray registers one x10rt.Arena per place under a symmetric
// arena id, so a sender can name remote memory as (arena, offset) and the
// transport can land the bytes without active-message dispatch — the
// paper's registered-segment contract (§3.3: RDMA "requires memory
// segments registered with the network hardware, and the initiating task
// must know the effective address of both ends").
//
// The arena closures carry the element type, so x10rt never reflects:
// PutLocal moves typed slices (in-process transports, true zero copy),
// PutLE/ReadOp translate little-endian wire bytes (TCP), and Xor/Add are
// the GUPS remote atomics. Only fixed-width numeric element types get a
// wire form; other types register a local-only window and the RDMA
// operations fall back to the active-message path.

// registerArenas installs one window per place for arr and records the
// symmetric arena id. wireOK reports whether the element type has a
// little-endian wire form (required for byte-stream transports).
func registerArenas[T any](arr *Array[T]) {
	at := arr.alloc.rt.Arenas()
	if at == nil {
		return
	}
	arr.arenaID = at.Reserve()
	for p := range arr.frags {
		a := arenaFor(arr.frags[p])
		if a.PutLE == nil {
			arr.localOnly = true
		}
		at.Register(p, arr.arenaID, a)
	}
}

// arenaFor builds the type-erased window closures over one fragment.
func arenaFor[T any](frag []T) *x10rt.Arena {
	var z T
	a := &x10rt.Arena{Elems: len(frag), ElemSize: int(sizeOf(z))}
	a.PutLocal = func(off int, local any) { copy(frag[off:], local.([]T)) }
	a.ReadOp = func(off, elems int) (any, func([]byte) []byte) {
		// Snapshot at read time: the reply may cross a wire after the
		// fragment has moved on, exactly like a posted RDMA get.
		snap := make([]T, elems)
		copy(snap, frag[off:off+elems])
		return snap, func(dst []byte) []byte { return appendWireLE(dst, snap) }
	}
	switch f := any(frag).(type) {
	case []byte:
		a.Raw = f // wire puts land straight into the fragment
		a.PutLE = func(off, elems int, data []byte) { copy(f[off:off+elems], data) }
	case []uint64:
		a.PutLE = func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				// The GUPS atomics may land concurrently from other
				// transport readers; stores go through the same door.
				atomic.StoreUint64(&f[off+i], binary.LittleEndian.Uint64(data[i*8:]))
			}
		}
		a.Xor = func(idx int, val uint64) {
			addr := &f[idx]
			for {
				old := atomic.LoadUint64(addr)
				if atomic.CompareAndSwapUint64(addr, old, old^val) {
					return
				}
			}
		}
		a.Add = func(idx int, val uint64) { atomic.AddUint64(&f[idx], val) }
	case []int64:
		a.PutLE = func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				f[off+i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
			}
		}
	case []float64:
		a.PutLE = func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				f[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
		}
	case []uint32:
		a.PutLE = func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				f[off+i] = binary.LittleEndian.Uint32(data[i*4:])
			}
		}
	case []int32:
		a.PutLE = func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				f[off+i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
			}
		}
	case []float32:
		a.PutLE = func(off, elems int, data []byte) {
			for i := 0; i < elems; i++ {
				f[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
			}
		}
	}
	return a
}

// appendWireLE appends the little-endian wire form of src. Types without
// a wire form return dst unchanged — such arrays are localOnly and never
// reach a byte-stream transport.
func appendWireLE[T any](dst []byte, src []T) []byte {
	switch s := any(src).(type) {
	case []byte:
		return append(dst, s...)
	case []uint64:
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	case []int64:
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case []float64:
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case []uint32:
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	case []int32:
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	case []float32:
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst
}

// oneSided reports whether arr's RDMA operations may use the transport's
// one-sided lane from the calling side.
func (arr *Array[T]) oneSided() bool {
	return arr.arenaID != 0 && !arr.localOnly && arr.alloc.rt.OneSidedEnabled()
}
