package congruent_test

import (
	"fmt"

	"apgas/internal/congruent"
	"apgas/internal/core"
)

// The §3.3 overlap idiom: an asynchronous copy tracked by the enclosing
// finish while the sender keeps computing.
func ExampleAsyncCopyPut() {
	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	alloc := congruent.NewAllocator(rt)
	dst, err := congruent.NewArray[float64](alloc, 8)
	if err != nil {
		panic(err)
	}
	_ = rt.Run(func(ctx *core.Ctx) {
		src := []float64{1, 2, 3}
		_ = ctx.Finish(func(c *core.Ctx) {
			// srcArray is local, dstArray is remote:
			congruent.AsyncCopyPut(c, src, dst, 1, 0)
			// ... computeLocally() while sending the data ...
		})
		fmt.Println("remote fragment:", dst.Fragment(1)[:3])
	})
	// Output: remote fragment: [1 2 3]
}

// The GUPS remote atomic XOR of Global RandomAccess.
func ExampleRemoteXor() {
	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	alloc := congruent.NewAllocator(rt)
	table, err := congruent.NewArray[uint64](alloc, 4)
	if err != nil {
		panic(err)
	}
	_ = rt.Run(func(ctx *core.Ctx) {
		_ = ctx.Finish(func(c *core.Ctx) {
			congruent.RemoteXor(c, table, 1, 2, 0xff)
		})
		fmt.Printf("%#x\n", table.Fragment(1)[2])
	})
	// Output: 0xff
}
