package chaos

import (
	"fmt"
	"strings"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

// The invariant checker runs after a workload's Run has returned and
// the transport has been drained (Transport.Drain), when the system
// must be fully quiescent. Violations at that point are protocol bugs,
// not timing artifacts — every fault in the deliverability-preserving
// menu guarantees eventual delivery, so a correct runtime has no
// excuse for leftover state.

// A Violation is one broken invariant with enough detail to act on.
type Violation struct {
	// Kind is a stable label: "finish-leak", "proxy-leak",
	// "dense-buffer-leak", "conservation", "stats-sum".
	Kind   string
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// FormatViolations renders violations one per line for test output.
func FormatViolations(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// CheckRuntime verifies the quiescence and conservation invariants of
// a runtime whose Run has returned:
//
//   - no FinishState survives (roots are deregistered when wait
//     returns; a leftover root leaked),
//   - no ProxyState survives (proxies are reaped by ctlCleanup; a
//     leftover proxy means a lost cleanup),
//   - every FINISH_DENSE coalescing buffer drained (a leftover
//     snapshot means a lost flush marker),
//   - for every finish pattern, activities spawned == activities
//     completed (an imbalance means the termination detector declared
//     quiescence while losing or double-counting an activity).
func CheckRuntime(rt *core.Runtime) []Violation {
	var vs []Violation
	for _, s := range rt.FinishStates() {
		vs = append(vs, Violation{
			Kind: "finish-leak",
			Detail: fmt.Sprintf("%s home=p%d seq=%d waiting=%v done=%v live=%d events=%d",
				s.Pattern, s.Home, s.Seq, s.Waiting, s.Done, s.Live, s.Events),
		})
	}
	for _, p := range rt.ProxyStates() {
		vs = append(vs, Violation{
			Kind: "proxy-leak",
			Detail: fmt.Sprintf("%s home=p%d seq=%d at=p%d live=%d epoch=%d",
				p.Pattern, p.Home, p.Seq, p.Place, p.Live, p.Epoch),
		})
	}
	for _, b := range rt.DenseBufferStates() {
		vs = append(vs, Violation{
			Kind: "dense-buffer-leak",
			Detail: fmt.Sprintf("master=p%d finish home=p%d seq=%d buffered=%d",
				b.Place, b.Home, b.Seq, b.Buffered),
		})
	}
	for _, a := range rt.ActivityCounts() {
		if !a.Balanced() {
			vs = append(vs, Violation{
				Kind: "conservation",
				Detail: fmt.Sprintf("%s spawned=%d completed=%d",
					a.Pattern, a.Spawned, a.Completed),
			})
		}
	}
	return vs
}

// CheckTransport verifies the telemetry sum-equality invariant from
// the per-place accounting contract: total Stats must equal the sum of
// PlaceStats over all places, message- and byte-exact per class. Chaos
// wrappers are unwrapped first; transports without per-place
// accounting are vacuously fine.
func CheckTransport(tr x10rt.Transport) []Violation {
	n := tr.NumPlaces()
	if c, ok := tr.(*Transport); ok {
		tr = c.Inner()
	}
	ps, ok := tr.(x10rt.PlaceMetricSource)
	if !ok {
		return nil
	}
	var sum x10rt.Stats
	for p := 0; p < n; p++ {
		s := ps.PlaceStats(p)
		for i := range sum.Messages {
			sum.Messages[i] += s.Messages[i]
			sum.Bytes[i] += s.Bytes[i]
		}
		sum.WireBytes += s.WireBytes
	}
	if total := tr.Stats(); total != sum {
		return []Violation{{
			Kind:   "stats-sum",
			Detail: fmt.Sprintf("Stats{%v} != Σ PlaceStats{%v}", total, sum),
		}}
	}
	return nil
}

// CheckAll combines the runtime and transport invariants.
func CheckAll(rt *core.Runtime, tr x10rt.Transport) []Violation {
	return append(CheckRuntime(rt), CheckTransport(tr)...)
}

// CheckRuntimeSurvivors is the kill-run variant of CheckRuntime: the
// quiescence invariants are restricted to the places that survived, and
// global per-pattern activity conservation — which a spawn lost to the
// victim legitimately unbalances — is replaced by the per-place
// begun==completed oracle, which must stay exact at every live place.
func CheckRuntimeSurvivors(rt *core.Runtime) []Violation {
	dead := make(map[core.Place]bool)
	for _, p := range rt.DeadPlaces() {
		dead[p] = true
	}
	var vs []Violation
	for _, s := range rt.FinishStates() {
		if dead[s.Home] {
			continue
		}
		vs = append(vs, Violation{
			Kind: "finish-leak",
			Detail: fmt.Sprintf("%s home=p%d seq=%d waiting=%v done=%v live=%d events=%d",
				s.Pattern, s.Home, s.Seq, s.Waiting, s.Done, s.Live, s.Events),
		})
	}
	for _, p := range rt.ProxyStates() {
		if dead[p.Place] || dead[p.Home] {
			continue
		}
		vs = append(vs, Violation{
			Kind: "proxy-leak",
			Detail: fmt.Sprintf("%s home=p%d seq=%d at=p%d live=%d epoch=%d",
				p.Pattern, p.Home, p.Seq, p.Place, p.Live, p.Epoch),
		})
	}
	for _, b := range rt.DenseBufferStates() {
		if dead[b.Place] || dead[b.Home] {
			continue
		}
		vs = append(vs, Violation{
			Kind: "dense-buffer-leak",
			Detail: fmt.Sprintf("master=p%d finish home=p%d seq=%d buffered=%d",
				b.Place, b.Home, b.Seq, b.Buffered),
		})
	}
	for _, pc := range rt.PlaceActivityCounts() {
		if dead[pc.Place] {
			continue
		}
		if !pc.Balanced() {
			vs = append(vs, Violation{
				Kind: "conservation",
				Detail: fmt.Sprintf("place %d: begun=%d completed=%d",
					pc.Place, pc.Begun, pc.Completed),
			})
		}
	}
	return vs
}

// CheckAllSurvivors combines the survivor-restricted runtime invariants
// with the transport sum-equality check (total and per-place counters
// advance together under the same locks, so their equality survives a
// mid-run kill).
func CheckAllSurvivors(rt *core.Runtime, tr x10rt.Transport) []Violation {
	return append(CheckRuntimeSurvivors(rt), CheckTransport(tr)...)
}
