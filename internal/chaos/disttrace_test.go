package chaos

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// These tests check the distributed-tracing contract under injected
// faults: span contexts ride inside the payloads the fault machinery
// delays, reorders, duplicates, and drops, so the merged trace must
// stay causally consistent no matter what the network did — every flow
// end pairs with exactly one flow begin of the same name, no arrow
// points backwards on the merged timeline, and a duplicated delivery
// shares its original's flow id instead of inventing a second arrow.

// checkCausalMerge merges a run's per-place traces and verifies the
// causal-consistency contract. It returns the merged trace and the
// count of flow ends per flow id, so callers can reason about
// duplicate deliveries.
func checkCausalMerge(t *testing.T, rep RunReport) (*obs.MergedTrace, map[uint64]int) {
	t.Helper()
	if len(rep.PlaceTraces) == 0 {
		t.Fatal("DistTrace run captured no place traces")
	}
	merged := obs.MergeTraces(rep.PlaceTraces)
	sends := make(map[uint64]obs.Event)
	for _, e := range merged.Events {
		if e.Ph == 's' && e.Flow != 0 {
			if _, dup := sends[e.Flow]; dup {
				t.Errorf("flow id %d has two flow-begin events", e.Flow)
			}
			sends[e.Flow] = e
		}
	}
	recvs := make(map[uint64]int)
	for _, e := range merged.Events {
		if e.Ph != 'f' || e.Flow == 0 {
			continue
		}
		recvs[e.Flow]++
		s, ok := sends[e.Flow]
		if !ok {
			t.Errorf("flow end %q id %d at p%d has no flow begin", e.Name, e.Flow, e.Pid)
			continue
		}
		if s.Name != e.Name || s.Cat != e.Cat {
			t.Errorf("flow id %d: begin %s/%s but end %s/%s", e.Flow, s.Name, s.Cat, e.Name, e.Cat)
		}
		if e.TS <= s.TS {
			t.Errorf("flow id %d (%s): receive at %dns not after send at %dns — backwards arrow",
				e.Flow, e.Name, e.TS, s.TS)
		}
	}
	return merged, recvs
}

// TestDistTraceCausalUnderFaults sweeps the standard fault menu with
// distributed tracing attached: the runs must stay violation-free (the
// tracer must not perturb the protocols) and the merged traces must
// stay causally consistent even though delivery was delayed, reordered,
// slowed, and partitioned.
func TestDistTraceCausalUnderFaults(t *testing.T) {
	seeds := []int64{3, 4, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	workloads := []Workload{
		{Name: "default", Run: runDefaultTree},
		{Name: "dense", Run: runDenseTree},
	}
	o := SweepOptions{DistTrace: true, Timeout: 20 * time.Second}
	for _, seed := range seeds {
		for _, w := range workloads {
			t.Run(fmt.Sprintf("%s/seed%d", w.Name, seed), func(t *testing.T) {
				rep := RunOne(w, seed, o, FaultsFor(seed, 4))
				if rep.Failed() {
					t.Fatalf("run failed:\n%s%s", FormatViolations(rep.Violations), rep.FinishDump)
				}
				merged, _ := checkCausalMerge(t, rep)
				if merged.Flows == 0 {
					t.Fatal("merged trace linked no cross-place flows")
				}
			})
		}
	}
}

// TestDistTraceDuplicatesShareFlowID forces duplicate deliveries and
// checks the wire contract: a duplicated message re-forwards the same
// payload — span context included — so both deliveries record flow
// ends under the *same* flow id: one begin, several ends, never a
// second arrow from a send that never happened. Duplication violates
// the runtime's finish contracts (the standard menu excludes dups for
// exactly that reason), so this test drives traced payloads through
// the chaos transport directly, which is the layer the duplication
// actually happens at.
func TestDistTraceDuplicatesShareFlowID(t *testing.T) {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{Seed: 5, DupProb: 1})
	tr := obs.NewTracer()
	tr.EnableDist(7)
	type payload struct {
		TC obs.SpanContext
		N  int
	}
	var received atomic.Int64
	if err := ct.Register(x10rt.UserHandlerBase, func(src, dst int, pl any) {
		p := pl.(payload)
		tr.RecvCtx(p.TC, "flow.data", "test", dst, 0, obs.Arg{Key: "src", Val: int64(src)})
		received.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	const msgs = 16
	for i := 0; i < msgs; i++ {
		tc := tr.SendCtx("flow.data", "test", 0, 0, obs.Arg{Key: "dst", Val: 1})
		if err := ct.Send(0, 1, x10rt.UserHandlerBase, payload{TC: tc, N: i}, 8, x10rt.DataClass); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	ct.Drain()
	dups := int64(ct.FaultCounts()[FaultDup.String()])
	if dups == 0 {
		t.Fatalf("DupProb=1 injected no duplicates: %v", ct.FaultCounts())
	}
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() != msgs+dups && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ct.Close()
	if got := received.Load(); got != msgs+dups {
		t.Fatalf("delivered %d messages, want %d", got, msgs+dups)
	}

	rep := RunReport{PlaceTraces: [][]obs.Event{tr.PlaceEvents(0), tr.PlaceEvents(1)}}
	_, recvs := checkCausalMerge(t, rep)
	maxEnds := 0
	for _, n := range recvs {
		if n > maxEnds {
			maxEnds = n
		}
	}
	if maxEnds < 2 {
		t.Fatalf("no flow id carries two flow ends despite duplication (max %d)", maxEnds)
	}
}

// TestDistTraceDropHealConsistent drops a bounded number of messages,
// lets the explorer heal the run (drain + morgue release), and requires
// the merged trace to remain causally consistent: a dropped-then-
// released message still pairs its single begin with an end that lands
// after it on the merged timeline. SPMD is the right workload here —
// every one of its messages is load-bearing, so a drop can only stall
// the run until healing, never complete it early with an orphaned
// activity.
func TestDistTraceDropHealConsistent(t *testing.T) {
	fo := Options{
		Seed:        2,
		DropProb:    1,
		MaxDrops:    2,
		DelayProb:   0.25,
		ReorderProb: 0.15,
		DelayWindow: 3,
	}
	rep := RunOne(Workload{Name: "spmd", Run: runSPMD}, 2,
		SweepOptions{DistTrace: true, Timeout: 1500 * time.Millisecond}, fo)
	if rep.Faults[FaultDrop.String()] == 0 {
		t.Fatalf("DropProb=1 injected no drops: %v", rep.Faults)
	}
	if rep.Hung {
		t.Fatalf("run stayed hung after healing:\n%s", rep.FinishDump)
	}
	if rep.Failed() {
		t.Fatalf("healed run failed:\n%s%s", FormatViolations(rep.Violations), rep.FinishDump)
	}
	checkCausalMerge(t, rep)
}

// TestDistTraceReplayByteIdentical is the replay guarantee with
// tracing attached: span propagation must not perturb the fault
// schedule, so two same-seed runs still produce byte-identical fault
// dumps — a traced replay reproduces exactly the run it replays.
func TestDistTraceReplayByteIdentical(t *testing.T) {
	run := func() RunReport {
		fo := Options{Seed: 99, DelayProb: 0.5, ReorderProb: 0.3, DelayWindow: 2}
		rep := RunOne(Workload{Name: "spmd", Run: runSPMD}, 99,
			SweepOptions{DistTrace: true}, fo)
		if rep.Failed() {
			t.Fatalf("seeded traced run failed:\n%s%s", FormatViolations(rep.Violations), rep.FinishDump)
		}
		return rep
	}
	r1, r2 := run(), run()
	if len(r1.Faults) == 0 {
		t.Fatal("seed 99 injected no faults; the replay check is vacuous")
	}
	if !bytes.Equal(r1.FaultDump, r2.FaultDump) {
		t.Fatalf("same-seed traced dumps differ:\n--- run1 ---\n%s--- run2 ---\n%s",
			r1.FaultDump, r2.FaultDump)
	}
}
