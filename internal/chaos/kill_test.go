package chaos

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"apgas/internal/core"
)

// The kill sweep is the resilience acceptance gate: every workload, many
// seeds, one seed-chosen mid-run KillPlace per run. The demanded outcome
// is quiescence — no hang, no panic, no survivor-invariant violation —
// with the death surfaced as ErrPlaceDead wherever the workload's
// structure forced it through the victim.

// killWorkloadsAlwaysThroughVictim names the workloads whose structure
// routes work through every place, so a fired kill must surface
// ErrPlaceDead: async/here/spmd finish at or through each place, and the
// GLB traversal posts a worker on each place.
var killWorkloadsAlwaysThroughVictim = map[string]bool{
	"async": true, "here": true, "spmd": true, "glb": true,
}

func runKillSweep(t *testing.T, batch bool) {
	o := SweepOptions{Seeds: 32, Kill: true, Batch: batch}
	if testing.Short() {
		o.Seeds = 8
	}
	o = o.withDefaults()
	kills := uint64(0)
	for i := 0; i < o.Seeds; i++ {
		seed := o.StartSeed + int64(i)
		for _, w := range o.Workloads {
			rep := RunOne(w, seed, o, KillFaultsFor(seed, o.Places))
			if rep.Failed() {
				t.Errorf("workload %s seed %d:\n%s", w.Name, seed,
					FormatViolations(rep.Violations))
				if rep.Hung {
					t.Logf("finish dump:\n%s", rep.FinishDump)
				}
				continue
			}
			fired := rep.Faults["chaos.kill"]
			kills += fired
			if w.Name == "local" {
				// The purely place-local workload sends nothing
				// cross-place: the trigger can never fire.
				if fired != 0 {
					t.Errorf("local seed %d: kill fired on a workload with no cross-place traffic", seed)
				}
				continue
			}
			if fired > 0 && killWorkloadsAlwaysThroughVictim[w.Name] &&
				!errors.Is(rep.Err, core.ErrPlaceDead) {
				t.Errorf("workload %s seed %d: kill fired but run error = %v, want ErrPlaceDead",
					w.Name, seed, rep.Err)
			}
			if fired > 0 && len(rep.Dead) == 0 {
				t.Errorf("workload %s seed %d: kill fired but runtime observed no death",
					w.Name, seed)
			}
		}
	}
	if kills == 0 {
		t.Fatal("no kill ever fired across the sweep")
	}
}

// TestKillSweep: the full workload suite under KillFaultsFor across many
// seeds, directly on the chaos transport.
func TestKillSweep(t *testing.T) {
	runKillSweep(t, false)
}

// TestKillSweepBatched: the same sweep with the batching layer stacked
// above the chaos wrapper, so the kill lands under coalesced traffic and
// the batcher's own death handling (purge queued batches, fail-fast
// sends) is in the loop.
func TestKillSweepBatched(t *testing.T) {
	runKillSweep(t, true)
}

// TestKillReplayByteIdentical: a killed run replays to the byte. Holds
// for the workloads with no concurrent cross-place traffic at the kill
// point — async and here are strictly sequential, local trivially so —
// which is exactly the guarantee KillPlan documents: the dump is the
// deterministic pre-kill prefix plus one chaos.kill record.
func TestKillReplayByteIdentical(t *testing.T) {
	o := SweepOptions{Timeout: 30 * time.Second}.withDefaults()
	for _, w := range Workloads() {
		switch w.Name {
		case "async", "here", "local":
		default:
			continue
		}
		for _, seed := range []int64{2, 5, 9, 16} {
			fo := KillFaultsFor(seed, o.Places)
			a := RunOne(w, seed, o, fo)
			b := RunOne(w, seed, o, fo)
			if a.Failed() || b.Failed() {
				t.Fatalf("workload %s seed %d failed:\n%s%s", w.Name, seed,
					FormatViolations(a.Violations), FormatViolations(b.Violations))
			}
			if !bytes.Equal(a.FaultDump, b.FaultDump) {
				t.Errorf("workload %s seed %d: fault dumps differ across replays\nrun1:\n%s\nrun2:\n%s",
					w.Name, seed, a.FaultDump, b.FaultDump)
			}
			if a.Faults["chaos.kill"] != b.Faults["chaos.kill"] {
				t.Errorf("workload %s seed %d: kill fired %d times vs %d on replay",
					w.Name, seed, a.Faults["chaos.kill"], b.Faults["chaos.kill"])
			}
		}
	}
}
