package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"apgas/internal/core"
	"apgas/internal/glb"
)

// Workloads are the programs the explorer subjects to faults. Each one
// exercises a specific finish pattern (or the GLB stack) and carries
// its own completion oracle: the expected number of activity
// executions is computed independently of the termination detector, so
// a protocol that declares quiescence early or loses work is caught
// even when the invariant checker's counters happen to balance.
//
// Every workload drives its own rt.Run because some (GLB) must attach
// state to the runtime before it starts. Workload shapes are pure
// functions of the seed, which keeps per-link send sequences
// deterministic for the structured patterns — the property the
// byte-identical replay guarantee rests on.

// A Workload is one named chaos subject.
type Workload struct {
	Name string
	// Deterministic marks workloads whose per-link send order cannot
	// depend on goroutine scheduling (sequential structure, or at most
	// one message per link). Only for these does the same seed
	// guarantee byte-identical fault dumps; the concurrent tree and
	// GLB workloads interleave message kinds per link differently from
	// run to run, so their logs legitimately vary.
	Deterministic bool
	// Run executes the workload on a fresh runtime and returns an
	// error when the completion oracle (or the run itself) fails.
	Run func(rt *core.Runtime, seed int64) error
}

// Workloads returns the full suite: one workload per finish pattern
// plus lifeline GLB.
func Workloads() []Workload {
	return []Workload{
		{Name: "async", Deterministic: true, Run: runAsync},
		{Name: "here", Deterministic: true, Run: runHere},
		{Name: "local", Deterministic: true, Run: runLocal},
		{Name: "spmd", Deterministic: true, Run: runSPMD},
		{Name: "default", Run: runDefaultTree},
		{Name: "dense", Run: runDenseTree},
		{Name: "glb", Run: runGLB},
	}
}

// oracle wraps the count-vs-expected comparison every workload ends on.
func oracle(name string, got *atomic.Int64, want int64, runErr error) error {
	if runErr != nil {
		return fmt.Errorf("%s: run: %w", name, runErr)
	}
	if g := got.Load(); g != want {
		return fmt.Errorf("%s: completed %d activities, oracle expects %d", name, g, want)
	}
	return nil
}

// errCollector accumulates finish errors from a workload body. Under the
// deliverability-preserving fault menu finishes never fail, so collecting
// (rather than panicking inside an activity, which would crash the whole
// process) only matters for kill runs, where ErrPlaceDead is the
// expected, demanded outcome.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (e *errCollector) add(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	e.err = errors.Join(e.err, err)
	e.mu.Unlock()
}

// get merges the collected finish errors with the rt.Run error.
func (e *errCollector) get(runErr error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return errors.Join(runErr, e.err)
}

// runAsync: one FINISH_ASYNC per destination place, each governing
// exactly the single remote activity its contract allows.
func runAsync(rt *core.Runtime, seed int64) error {
	var n atomic.Int64
	var errs errCollector
	err := rt.Run(func(ctx *core.Ctx) {
		for _, p := range ctx.Places() {
			p := p
			errs.add(ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
				c.AtAsync(p, func(*core.Ctx) { n.Add(1) })
			}))
		}
	})
	return oracle("async", &n, int64(rt.NumPlaces()), errs.get(err))
}

// runHere: steal-shaped FINISH_HERE round trips — request out to every
// other place, response straight home, token riding the messages.
func runHere(rt *core.Runtime, seed int64) error {
	var n atomic.Int64
	var errs errCollector
	err := rt.Run(func(ctx *core.Ctx) {
		home := ctx.Place()
		for _, p := range ctx.Places() {
			if p == home {
				continue
			}
			p := p
			errs.add(ctx.FinishPragma(core.PatternHere, func(c *core.Ctx) {
				c.AtDirect(p, 16, func(cv *core.Ctx) {
					cv.AtDirect(home, 16, func(*core.Ctx) { n.Add(1) })
				})
			}))
		}
	})
	return oracle("here", &n, int64(rt.NumPlaces()-1), errs.get(err))
}

// runLocal: a FINISH_LOCAL tree of purely place-local asyncs, two
// levels deep.
func runLocal(rt *core.Runtime, seed int64) error {
	const width, sub = 8, 3
	var n atomic.Int64
	var errs errCollector
	err := rt.Run(func(ctx *core.Ctx) {
		errs.add(ctx.FinishPragma(core.PatternLocal, func(c *core.Ctx) {
			for i := 0; i < width; i++ {
				c.Async(func(cc *core.Ctx) {
					n.Add(1)
					for j := 0; j < sub; j++ {
						cc.Async(func(*core.Ctx) { n.Add(1) })
					}
				})
			}
		}))
	})
	return oracle("local", &n, int64(width*(1+sub)), errs.get(err))
}

// runSPMD: one FINISH_SPMD spanning every remote place; each remote
// activity wraps its inner asyncs in a nested finish, as the contract
// requires.
func runSPMD(rt *core.Runtime, seed int64) error {
	const inner = 3
	var n atomic.Int64
	var errs errCollector
	err := rt.Run(func(ctx *core.Ctx) {
		home := ctx.Place()
		errs.add(ctx.FinishPragma(core.PatternSPMD, func(c *core.Ctx) {
			for _, p := range c.Places() {
				if p == home {
					continue
				}
				p := p
				c.AtAsync(p, func(cc *core.Ctx) {
					errs.add(cc.Finish(func(ic *core.Ctx) {
						for j := 0; j < inner; j++ {
							ic.Async(func(*core.Ctx) { n.Add(1) })
						}
					}))
					n.Add(1)
				})
			}
		}))
	})
	return oracle("spmd", &n, int64((rt.NumPlaces()-1)*(1+inner)), errs.get(err))
}

// treeNode is one activity of a precomputed random async/at tree. The
// tree is built before execution from the seed alone, so the expected
// completion count is known exactly and the shape is replay-stable.
type treeNode struct {
	place    int
	children []*treeNode
}

// buildTree generates a random activity tree rooted at place. Roughly
// a third of the children hop to a random other place (at async),
// the rest stay local (async). Returns the root and the node count.
func buildTree(s *faultStream, place, places, depth int) (*treeNode, int64) {
	n := &treeNode{place: place}
	count := int64(1)
	if depth == 0 {
		return n, count
	}
	fan := 1 + s.intn(3)
	for i := 0; i < fan; i++ {
		childPlace := place
		if s.intn(3) == 0 {
			childPlace = s.intn(places)
		}
		child, c := buildTree(s, childPlace, places, depth-1)
		n.children = append(n.children, child)
		count += c
	}
	return n, count
}

// execTree runs the tree under the current finish, bumping count once
// per node.
func execTree(c *core.Ctx, node *treeNode, count *atomic.Int64) {
	count.Add(1)
	for _, ch := range node.children {
		ch := ch
		if ch.place == int(c.Place()) {
			c.Async(func(cc *core.Ctx) { execTree(cc, ch, count) })
		} else {
			c.AtAsync(core.Place(ch.place), func(cc *core.Ctx) { execTree(cc, ch, count) })
		}
	}
}

// runTree executes a seed-derived random tree under one finish of the
// given pattern. Trees regularly mix local-only prefixes with remote
// hops, so FINISH_DEFAULT runs exercise the local→distributed
// promotion path.
func runTree(rt *core.Runtime, seed int64, name string, pattern core.Pattern) error {
	s := newFaultStream(seed, 101, 0, 0) // distinct stream from fault decisions
	root, want := buildTree(s, 0, rt.NumPlaces(), 4)
	var n atomic.Int64
	var errs errCollector
	err := rt.Run(func(ctx *core.Ctx) {
		errs.add(ctx.FinishPragma(pattern, func(c *core.Ctx) {
			// The finish body is the root activity; its node is counted
			// by execTree directly.
			execTree(c, root, &n)
		}))
	})
	// The finish body itself is not a spawned activity, but execTree
	// counts its node; want already includes it.
	return oracle(name, &n, want, errs.get(err))
}

func runDefaultTree(rt *core.Runtime, seed int64) error {
	return runTree(rt, seed, "default", core.PatternDefault)
}

func runDenseTree(rt *core.Runtime, seed int64) error {
	return runTree(rt, seed, "dense", core.PatternDense)
}

// chaosBag is a minimal GLB TaskBag: a splittable pile of identical
// units (the glb package's test bag is unexported, hence this twin).
type chaosBag struct {
	pending int64
	done    int64
}

func (b *chaosBag) Process(q int) int {
	n := int64(q)
	if n > b.pending {
		n = b.pending
	}
	b.pending -= n
	b.done += n
	return int(n)
}

func (b *chaosBag) Size() int64 { return b.pending }

func (b *chaosBag) Split() glb.TaskBag {
	if b.pending < 2 {
		return nil
	}
	half := b.pending / 2
	b.pending -= half
	return &chaosBag{pending: half}
}

func (b *chaosBag) Merge(loot glb.TaskBag) {
	// Only pending work moves: loot from Split never carries done units,
	// and a dead place's adopted bag must leave its done count behind so
	// summing done over every bag still counts each processed unit once.
	b.pending += loot.(*chaosBag).pending
}

// runGLB: a lifeline-GLB traversal with all work seeded at place 0, so
// every other place must steal (random or lifeline) under chaos. The
// oracle is exact work conservation: units processed across all bags
// equals units seeded. Even seeds use the paper's FINISH_DENSE root,
// odd seeds the default finish.
func runGLB(rt *core.Runtime, seed int64) error {
	const total = 1 << 11
	b := glb.New(rt, glb.Config{
		Quantum:     64,
		Seed:        seed | 1,
		DenseFinish: seed%2 == 0,
	}, func(p core.Place) glb.TaskBag {
		if p == 0 {
			return &chaosBag{pending: total}
		}
		return &chaosBag{}
	})
	var berr error
	err := rt.Run(func(ctx *core.Ctx) { berr = b.Run(ctx) })
	err = errors.Join(err, berr)
	if err != nil && !errors.Is(err, core.ErrPlaceDead) {
		return fmt.Errorf("glb: run: %w", err)
	}
	// Work conservation must hold even across a place death: the victim's
	// unprocessed remainder is re-homed by the balancer's adoption rounds,
	// so every seeded unit is processed exactly once somewhere.
	var done int64
	for p := 0; p < rt.NumPlaces(); p++ {
		done += b.BagAt(core.Place(p)).(*chaosBag).done
	}
	if done != total || b.Stats().Processed != total {
		return fmt.Errorf("glb: processed %d (stats %d), oracle expects %d",
			done, b.Stats().Processed, total)
	}
	// Surface the death itself (expected and accepted by kill sweeps).
	return err
}
