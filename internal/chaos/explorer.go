package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// The explorer is the harness's outer loop: run every workload against
// many seeds of deliverability-preserving faults, drain, check every
// invariant, and report anything that survives. A second mode replaces
// probabilistic faults with exhaustive permutation of a small held
// message set — bounded schedule exploration for the counter-pattern
// fast paths, whose correctness argument is exactly "any delivery
// order of the completion credits works".

// SweepOptions shapes an exploration.
type SweepOptions struct {
	// Places per run (default 4) and PlacesPerHost (default 2, so the
	// FINISH_DENSE software routing actually routes through masters).
	Places        int
	PlacesPerHost int
	// WorkersPerPlace for each runtime (default 2).
	WorkersPerPlace int
	// Seeds is how many consecutive seeds to sweep, starting at
	// StartSeed (defaults 64 and 1).
	Seeds     int
	StartSeed int64
	// Workloads defaults to the full suite (Workloads()).
	Workloads []Workload
	// Timeout aborts one run and reports it as hung (default 30s).
	Timeout time.Duration
	// Obs attaches an observability layer (metrics + flight recorder)
	// to each run, with the chaos virtual clock driving flight
	// timestamps. Sweeps leave it off; replays turn it on.
	Obs bool
	// DistTrace attaches a distributed tracer (implies Obs): every
	// cross-place message carries a span context through the fault
	// machinery, and the report captures per-place trace events so
	// tests can merge them and check causal consistency under faults.
	DistTrace bool
	// Batch stacks a BatchingTransport outermost (above the chaos
	// wrapper), so every injected fault acts on traffic that already
	// went through coalescing. The batcher's flush predicates read the
	// chaos virtual clock, keeping runs replayable: batch boundaries are
	// functions of simulated time and per-link send order, never of host
	// scheduling.
	Batch bool
	// Kill adds one seed-chosen mid-run KillPlace to every run
	// (KillFaultsFor), switching the invariant checker to the
	// survivor-restricted variant and accepting ErrPlaceDead from the
	// workload as the demanded outcome rather than a violation.
	Kill bool
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.Places <= 0 {
		o.Places = 4
	}
	if o.PlacesPerHost <= 0 {
		o.PlacesPerHost = 2
	}
	if o.WorkersPerPlace <= 0 {
		o.WorkersPerPlace = 2
	}
	if o.Seeds <= 0 {
		o.Seeds = 64
	}
	if o.StartSeed == 0 {
		o.StartSeed = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// RunReport is the outcome of one (workload, seed) run.
type RunReport struct {
	Workload string
	Seed     int64
	// Violations collects broken invariants, oracle failures, and
	// hangs; empty means the run passed.
	Violations []Violation
	// Faults counts injected fault decisions by kind.
	Faults map[string]uint64
	// Hung reports a run that exceeded the timeout even after healing.
	Hung bool
	// FinishDump holds the who-owes-whom finish diagnostic of a hung
	// run.
	FinishDump string
	// FaultDump is the deterministic fault log in apgas-flight JSONL.
	FaultDump []byte
	// FlightDump is the runtime flight-recorder dump (only when
	// SweepOptions.Obs was set).
	FlightDump []byte
	// PlaceTraces holds each place's trace events (only when
	// SweepOptions.DistTrace was set), ready for obs.MergeTraces.
	PlaceTraces [][]obs.Event
	// Err is the workload's final error. Oracle failures are already
	// folded into Violations; kill runs additionally expose the raw
	// error here so tests can assert the demanded ErrPlaceDead verdict.
	Err error
	// Dead lists the places the runtime observed dead by the end of the
	// run (empty outside kill mode).
	Dead []core.Place
}

// Failed reports whether the run violated anything.
func (r RunReport) Failed() bool { return len(r.Violations) > 0 }

// SweepResult aggregates an exploration.
type SweepResult struct {
	Runs        int
	Failures    []RunReport
	FaultTotals map[string]uint64
}

// FaultsFor derives the standard deliverability-preserving fault menu
// from a seed: always delay+reorder, every third seed a slow place,
// every fourth a bounded partition. Drops and duplicates are excluded
// by design — without a retry layer they make hangs expected rather
// than diagnostic (see the package comment).
func FaultsFor(seed int64, places int) Options {
	s := newFaultStream(seed, places, 0, 0)
	o := Options{
		Seed:        seed,
		DelayProb:   0.25,
		ReorderProb: 0.15,
		DelayWindow: 3,
	}
	if seed%3 == 0 {
		o.SlowPlace = s.intn(places)
		o.SlowLatency = 200 * time.Microsecond
	}
	if seed%4 == 0 {
		o.Cut = []int{s.intn(places)}
		o.PartitionMsgs = 6
		o.HealAfter = 20 * time.Millisecond
	}
	return o
}

// KillFaultsFor is FaultsFor plus one seed-chosen kill: the victim (never
// place 0, the driver) dies when the first fault-eligible message from
// place 0 reaches it. Like every other fault, the plan is a pure function
// of the seed, so kill runs replay exactly. Workloads that never route a
// message from place 0 to the victim (e.g. the purely place-local one)
// simply never trigger the kill and must pass the plain-run oracle.
func KillFaultsFor(seed int64, places int) Options {
	o := FaultsFor(seed, places)
	s := newFaultStream(seed, 7, places, 1)
	o.Kill = &KillPlan{Victim: 1 + s.intn(places-1), Src: 0, Seq: 0}
	return o
}

// RunOne executes one workload on a fresh runtime behind a chaos
// transport configured by fo, then drains and checks every invariant.
func RunOne(w Workload, seed int64, o SweepOptions, fo Options) RunReport {
	o = o.withDefaults()
	rep := RunReport{Workload: w.Name, Seed: seed}
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: o.Places})
	if err != nil {
		rep.Violations = append(rep.Violations, Violation{Kind: "setup", Detail: err.Error()})
		return rep
	}
	ct := Wrap(inner, fo)
	// The outermost transport: by default the chaos wrapper itself, or a
	// batching layer above it when o.Batch — runtime sends then coalesce
	// before the fault machinery sees them, the composition a production
	// deployment would use. drain pushes queued batches through and then
	// drains chaos holdbacks until quiescent.
	tr, drain := x10rt.Transport(ct), ct.Drain
	var bt *x10rt.BatchingTransport
	if o.Batch {
		bt = x10rt.NewBatchingTransport(ct, x10rt.BatchOptions{
			Now: ct.Clock().Now,
			// The virtual clock stops whenever the run blocks on a
			// queued batch; without the stall escape the aged-flush
			// predicate would freeze with it and the run would hang.
			FlushOnStall: true,
		})
		tr, drain = bt, bt.Quiesce
	}
	var ob *obs.Obs
	if o.Obs || o.DistTrace {
		if o.DistTrace {
			ob = obs.NewTracingDist()
		} else {
			ob = obs.New()
		}
		// Flight timestamps follow the virtual clock: logical event
		// counts, not wall time, so replays of one seed line up.
		ob.Flight.SetNow(ct.Clock().Now)
	}
	rt, err := core.NewRuntime(core.Config{
		Places:          o.Places,
		WorkersPerPlace: o.WorkersPerPlace,
		PlacesPerHost:   o.PlacesPerHost,
		Transport:       tr,
		CheckPatterns:   true,
		Obs:             ob,
		Now:             ct.Clock().Now,
	})
	if err != nil {
		if bt != nil {
			bt.Close()
		} else {
			ct.Close()
		}
		rep.Violations = append(rep.Violations, Violation{Kind: "setup", Detail: err.Error()})
		return rep
	}

	// In kill mode the runtime hears about the death on a notification
	// goroutine, which can trail a workload that finished cleanly (e.g.
	// the trigger consumed a post-run cleanup message). The invariant
	// check must not race that: subscribe before the run so the check
	// can wait for adoption — subscribers run after it — to complete.
	deathProcessed := make(chan struct{}, 1)
	if fo.Kill != nil {
		rt.NotifyPlaceDeath(func(core.Place) {
			select {
			case deathProcessed <- struct{}{}:
			default:
			}
		})
	}

	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(error); ok {
					// Preserve the chain so errors.Is still sees, e.g.,
					// ErrPlaceDead inside a panicked wrapper.
					done <- fmt.Errorf("panic: %w", e)
				} else {
					done <- fmt.Errorf("panic: %v", r)
				}
			}
		}()
		done <- w.Run(rt, seed)
	}()
	runErr, hung := error(nil), false
	select {
	case runErr = <-done:
	case <-time.After(o.Timeout):
		// Heal everything (flush batches and holdbacks, deliver the
		// morgue) and give the run one grace period to complete before
		// declaring a hang: only a run that stays stuck with every
		// message delivered is a protocol bug.
		drain()
		ct.ReleaseDropped()
		select {
		case runErr = <-done:
		case <-time.After(o.Timeout / 4):
			hung = true
		}
	}

	if hung {
		var fd bytes.Buffer
		rt.WriteFinishDump(&fd)
		rep.Hung = true
		rep.FinishDump = fd.String()
		rep.Violations = append(rep.Violations, Violation{
			Kind:   "hang",
			Detail: fmt.Sprintf("run exceeded %v after healing; finish dump attached", o.Timeout),
		})
	} else {
		rep.Err = runErr
		if runErr != nil && !(fo.Kill != nil && errors.Is(runErr, core.ErrPlaceDead)) {
			rep.Violations = append(rep.Violations, Violation{Kind: "oracle", Detail: runErr.Error()})
		}
		drain()
		if kp := fo.Kill; kp != nil && ct.PlaceDead(kp.Victim) {
			select {
			case <-deathProcessed:
			case <-time.After(o.Timeout):
			}
		}
		rep.Dead = rt.DeadPlaces()
		if len(rep.Dead) > 0 {
			// Global per-pattern conservation legitimately breaks when a
			// spawn's destination dies; the survivor-restricted checks are
			// the contract a kill run must meet.
			rep.Violations = append(rep.Violations, CheckAllSurvivors(rt, tr)...)
		} else {
			rep.Violations = append(rep.Violations, CheckAll(rt, tr)...)
		}
	}

	rep.Faults = ct.FaultCounts()
	var dump bytes.Buffer
	if err := ct.FaultLog().WriteDump(&dump); err == nil {
		rep.FaultDump = dump.Bytes()
	}
	if ob != nil {
		var fl bytes.Buffer
		if err := ob.Flight.WriteDump(&fl); err == nil {
			rep.FlightDump = fl.Bytes()
		}
	}
	if o.DistTrace && ob != nil && ob.Trace != nil {
		for p := 0; p < o.Places; p++ {
			rep.PlaceTraces = append(rep.PlaceTraces, ob.Trace.PlaceEvents(p))
		}
	}
	if !hung {
		// A hung run still owns live activities; closing would race them.
		rt.Close()
		if bt != nil {
			bt.Close() // closes ct too
		} else {
			ct.Close()
		}
	}
	return rep
}

// Sweep explores Seeds consecutive seeds across every workload with
// the FaultsFor menu, aggregating failures and fault totals.
func Sweep(o SweepOptions) SweepResult {
	o = o.withDefaults()
	res := SweepResult{FaultTotals: make(map[string]uint64)}
	for i := 0; i < o.Seeds; i++ {
		seed := o.StartSeed + int64(i)
		for _, w := range o.Workloads {
			fo := FaultsFor(seed, o.Places)
			if o.Kill {
				fo = KillFaultsFor(seed, o.Places)
			}
			rep := RunOne(w, seed, o, fo)
			res.Runs++
			for k, v := range rep.Faults {
				res.FaultTotals[k] += v
			}
			if rep.Failed() {
				res.Failures = append(res.Failures, rep)
			}
		}
	}
	return res
}

// permutations returns every ordering of [0, n), n <= 6.
func permutations(n int) [][]int {
	if n > 6 {
		panic("chaos: permutation exploration bounded at 6 messages")
	}
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// ExplorePermutations exhaustively explores delivery orders of the
// FINISH_SPMD completion credits: with P places the root waits for
// P-1 ctlDone control messages, the harness holds all of them and
// releases each permutation in its own run. The SPMD fast path claims
// order-independence ("order, source, content irrelevant"); this
// checks the claim exhaustively rather than hoping a random sweep
// hits the bad order.
func ExplorePermutations(o SweepOptions) SweepResult {
	o = o.withDefaults()
	if o.Places > 5 {
		o.Places = 5 // keep (P-1)! runs bounded
	}
	spmd := Workload{Name: "spmd", Run: runSPMD}
	res := SweepResult{FaultTotals: make(map[string]uint64)}
	for _, perm := range permutations(o.Places - 1) {
		fo := Options{
			Seed: o.StartSeed,
			Hold: &HoldPlan{
				To:    0,
				Class: x10rt.ControlClass,
				N:     o.Places - 1,
				Perm:  perm,
			},
		}
		rep := RunOne(spmd, o.StartSeed, o, fo)
		rep.Workload = fmt.Sprintf("spmd/perm%v", perm)
		res.Runs++
		for k, v := range rep.Faults {
			res.FaultTotals[k] += v
		}
		if rep.Failed() {
			res.Failures = append(res.Failures, rep)
		}
	}
	return res
}
