package chaos

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/x10rt"
)

// scriptedDump drives a chaos transport through a fixed, single-
// goroutine message script with every fault class enabled and returns
// the fault-log dump. Per-link send order is fully deterministic here,
// so the dump must be byte-identical across invocations with the same
// seed — the replay guarantee at its sharpest.
func scriptedDump(t *testing.T, seed int64) ([]byte, map[string]uint64, int64) {
	t.Helper()
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 3})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{
		Seed:        seed,
		DropProb:    0.10,
		DupProb:     0.05,
		DelayProb:   0.30,
		ReorderProb: 0.20,
		DelayWindow: 3,
	})
	var received atomic.Int64
	if err := ct.Register(x10rt.UserHandlerBase, func(src, dst int, payload any) {
		received.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	const msgs = 240
	for i := 0; i < msgs; i++ {
		src := i % 3
		dst := (i*7 + 1) % 3
		if dst == src {
			dst = (dst + 1) % 3
		}
		class := x10rt.DataClass
		if i%2 == 0 {
			class = x10rt.ControlClass
		}
		if err := ct.Send(src, dst, x10rt.UserHandlerBase, i, 8, class); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Heal completely: flush holdbacks, then deliver the morgue (which
	// itself may not be held again — probabilities apply at first send
	// only... ReleaseDropped forwards directly to the inner transport).
	ct.Drain()
	ct.ReleaseDropped()
	ct.Drain()

	var dump bytes.Buffer
	if err := ct.FaultLog().WriteDump(&dump); err != nil {
		t.Fatal(err)
	}
	counts := ct.FaultCounts()
	// Every scripted message must eventually arrive, plus one extra
	// delivery per duplicate.
	want := int64(msgs) + int64(counts[FaultDup.String()])
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() != want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := received.Load()
	ct.Close()
	if got != want {
		t.Fatalf("delivered %d messages, want %d (faults %v)", got, want, counts)
	}
	return dump.Bytes(), counts, got
}

// TestFaultDumpByteIdentical is the acceptance check for deterministic
// replay: two runs of the same seed produce byte-identical fault
// dumps; a different seed produces a different one.
func TestFaultDumpByteIdentical(t *testing.T) {
	d1, counts, _ := scriptedDump(t, 42)
	d2, _, _ := scriptedDump(t, 42)
	if !bytes.Equal(d1, d2) {
		t.Fatalf("same-seed dumps differ:\n--- run1 ---\n%s--- run2 ---\n%s", d1, d2)
	}
	for _, k := range []FaultKind{FaultDrop, FaultDup, FaultDelay, FaultReorder} {
		if counts[k.String()] == 0 {
			t.Errorf("seed 42 injected no %s faults; script too short or decisions broken", k)
		}
	}
	d3, _, _ := scriptedDump(t, 43)
	if bytes.Equal(d1, d3) {
		t.Fatal("different seeds produced identical fault dumps")
	}
}

// TestFaultDumpIsValidFlightFormat re-implements tracecheck's flight
// dump invariants over the chaos log: a well-formed header line whose
// events count matches the body, then strictly increasing seq and
// non-decreasing ts.
func TestFaultDumpIsValidFlightFormat(t *testing.T) {
	dump, _, _ := scriptedDump(t, 7)
	lines := bytes.Split(bytes.TrimSpace(dump), []byte("\n"))
	var hdr struct {
		Type    string `json:"type"`
		Version int    `json:"version"`
		Events  int    `json:"events"`
	}
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Type != "apgas-flight" || hdr.Version != 1 {
		t.Fatalf("header = %+v, want apgas-flight v1", hdr)
	}
	if hdr.Events != len(lines)-1 {
		t.Fatalf("header says %d events, body has %d", hdr.Events, len(lines)-1)
	}
	lastSeq, lastTS := uint64(0), int64(-1)
	for i, ln := range lines[1:] {
		var ev struct {
			Seq  uint64 `json:"seq"`
			TS   int64  `json:"ts"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		if ev.TS < lastTS {
			t.Fatalf("event %d: ts %d went backwards (prev %d)", i, ev.TS, lastTS)
		}
		lastSeq, lastTS = ev.Seq, ev.TS
	}
}

// TestPartitionHealsAndDelivers: messages crossing the cut are held but
// never lost — the partition heals by wall time even with no follow-up
// traffic to trigger the sequence-based release.
func TestPartitionHealsAndDelivers(t *testing.T) {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{
		Seed:          1,
		Cut:           []int{1},
		PartitionMsgs: 8,
		HealAfter:     30 * time.Millisecond,
	})
	defer ct.Close()
	var received atomic.Int64
	ct.Register(x10rt.UserHandlerBase, func(src, dst int, payload any) { received.Add(1) })
	for i := 0; i < 3; i++ {
		if err := ct.Send(0, 1, x10rt.UserHandlerBase, i, 8, x10rt.DataClass); err != nil {
			t.Fatal(err)
		}
	}
	if got := ct.FaultCounts()[FaultPartition.String()]; got != 3 {
		t.Fatalf("partition held %d messages, want 3", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := received.Load(); got != 3 {
		t.Fatalf("partition never healed: %d/3 delivered", got)
	}
}

// TestSlowPlaceDelaysButDelivers: a slow place's traffic arrives late
// but intact, and the decision is logged.
func TestSlowPlaceDelaysButDelivers(t *testing.T) {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{Seed: 1, SlowPlace: 1, SlowLatency: 20 * time.Millisecond})
	defer ct.Close()
	done := make(chan struct{}, 1)
	ct.Register(x10rt.UserHandlerBase, func(src, dst int, payload any) { done <- struct{}{} })
	start := time.Now()
	if err := ct.Send(0, 1, x10rt.UserHandlerBase, nil, 8, x10rt.DataClass); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slow-place message never delivered")
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("slow-place message arrived after %v, want >= ~20ms", d)
	}
	if ct.FaultCounts()[FaultSlow.String()] != 1 {
		t.Errorf("slow fault not logged: %v", ct.FaultCounts())
	}
}

// TestDropMorgueAndRelease: drops report success to the sender, park
// the payload, and ReleaseDropped heals them in deterministic order.
func TestDropMorgueAndRelease(t *testing.T) {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{Seed: 1, DropProb: 1, MaxDrops: 2})
	defer ct.Close()
	var received atomic.Int64
	ct.Register(x10rt.UserHandlerBase, func(src, dst int, payload any) { received.Add(1) })
	for i := 0; i < 4; i++ {
		if err := ct.Send(0, 1, x10rt.UserHandlerBase, i, 8, x10rt.DataClass); err != nil {
			t.Fatalf("dropped send must still report success: %v", err)
		}
	}
	ct.Drain()
	if got := received.Load(); got != 2 {
		t.Fatalf("MaxDrops=2: %d delivered before release, want 2", got)
	}
	if ct.DroppedCount() != 2 {
		t.Fatalf("morgue holds %d, want 2", ct.DroppedCount())
	}
	if n := ct.ReleaseDropped(); n != 2 {
		t.Fatalf("ReleaseDropped delivered %d, want 2", n)
	}
	ct.Drain()
	if got := received.Load(); got != 4 {
		t.Fatalf("after healing %d/4 delivered", got)
	}
	if ct.DroppedCount() != 0 {
		t.Fatal("morgue not emptied")
	}
}

// TestTelemetryNeverFaulted: the observation plane must pass through
// untouched even with every fault probability at 1.
func TestTelemetryNeverFaulted(t *testing.T) {
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{Seed: 1, DropProb: 1, DelayProb: 1})
	defer ct.Close()
	done := make(chan struct{}, 1)
	ct.Register(x10rt.HandlerTelemetry, func(src, dst int, payload any) { done <- struct{}{} })
	if err := ct.Send(0, 1, x10rt.HandlerTelemetry, nil, 8, x10rt.ControlClass); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("telemetry message was faulted")
	}
	if len(ct.FaultCounts()) != 0 {
		t.Fatalf("telemetry traffic logged faults: %v", ct.FaultCounts())
	}
}
