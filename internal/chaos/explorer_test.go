package chaos

import (
	"bytes"
	"testing"
	"time"
)

// TestExploreSweep is the harness's acceptance test: sweep every
// workload — all five specialized finish patterns, the promoting
// default pattern, and lifeline GLB — across many seeds of
// deliverability-preserving faults, and require zero invariant
// violations. The full 64-seed sweep runs by default (and under `make
// chaos` with the race detector); -short trims the seed count to keep
// tier-1 wall clock in budget.
func TestExploreSweep(t *testing.T) {
	o := SweepOptions{Seeds: 64, Timeout: 20 * time.Second}
	if testing.Short() {
		o.Seeds = 6
	}
	res := Sweep(o)
	if want := o.Seeds * len(Workloads()); res.Runs != want {
		t.Fatalf("sweep ran %d runs, want %d", res.Runs, want)
	}
	for _, rep := range res.Failures {
		t.Errorf("workload %q seed %d (faults %v):\n%s%s",
			rep.Workload, rep.Seed, rep.Faults,
			FormatViolations(rep.Violations), rep.FinishDump)
	}
	// The sweep must actually have exercised the fault menu, or a pass
	// is meaningless.
	for _, k := range []FaultKind{FaultDelay, FaultReorder, FaultPartition, FaultSlow} {
		if res.FaultTotals[k.String()] == 0 {
			t.Errorf("sweep injected no %s faults: %v", k, res.FaultTotals)
		}
	}
	t.Logf("sweep: %d runs clean, fault totals %v", res.Runs, res.FaultTotals)
}

// TestExploreSweepBatched repeats the sweep with the batching transport
// stacked above the chaos wrapper — the full production composition:
// runtime sends coalesce into batches, and only then meet the fault
// machinery. Every workload must stay violation-free, proving that
// batching neither breaks the finish protocols under reordering and
// partitions nor confuses the telemetry sum invariant (wire bytes
// included, via CheckTransport).
func TestExploreSweepBatched(t *testing.T) {
	o := SweepOptions{Seeds: 16, Timeout: 20 * time.Second, Batch: true}
	if testing.Short() {
		o.Seeds = 4
	}
	res := Sweep(o)
	if want := o.Seeds * len(Workloads()); res.Runs != want {
		t.Fatalf("batched sweep ran %d runs, want %d", res.Runs, want)
	}
	for _, rep := range res.Failures {
		t.Errorf("workload %q seed %d (faults %v):\n%s%s",
			rep.Workload, rep.Seed, rep.Faults,
			FormatViolations(rep.Violations), rep.FinishDump)
	}
	if res.FaultTotals[FaultDelay.String()] == 0 {
		t.Errorf("batched sweep injected no delay faults: %v", res.FaultTotals)
	}
	t.Logf("batched sweep: %d runs clean, fault totals %v", res.Runs, res.FaultTotals)
}

// TestExplorePermutations exhaustively permutes the delivery order of
// the FINISH_SPMD completion credits. Every ordering must terminate
// cleanly — the counter fast path's core claim.
func TestExplorePermutations(t *testing.T) {
	o := SweepOptions{Places: 4, Timeout: 20 * time.Second}
	res := ExplorePermutations(o)
	if want := 6; res.Runs != want { // (4-1)! orderings
		t.Fatalf("permutation mode ran %d runs, want %d", res.Runs, want)
	}
	for _, rep := range res.Failures {
		t.Errorf("%s seed %d:\n%s%s", rep.Workload, rep.Seed,
			FormatViolations(rep.Violations), rep.FinishDump)
	}
	if got := res.FaultTotals[FaultHold.String()]; got != 6*3 {
		t.Errorf("held %d messages across permutations, want 18", got)
	}
}

// TestReplayByteIdenticalEndToEnd runs the full runtime stack (SPMD
// workload, whose per-link traffic is exactly one message per link and
// therefore deterministic) twice under seeded delay+reorder faults and
// requires byte-identical fault dumps — the end-to-end form of the
// replay guarantee.
func TestReplayByteIdenticalEndToEnd(t *testing.T) {
	run := func() RunReport {
		fo := Options{Seed: 99, DelayProb: 0.5, ReorderProb: 0.3, DelayWindow: 2}
		rep := RunOne(Workload{Name: "spmd", Run: runSPMD}, 99, SweepOptions{}, fo)
		if rep.Failed() {
			t.Fatalf("seeded run failed:\n%s%s", FormatViolations(rep.Violations), rep.FinishDump)
		}
		return rep
	}
	r1, r2 := run(), run()
	if len(r1.Faults) == 0 {
		t.Fatal("seed 99 injected no faults; the replay check is vacuous")
	}
	if !bytes.Equal(r1.FaultDump, r2.FaultDump) {
		t.Fatalf("same-seed end-to-end dumps differ:\n--- run1 ---\n%s--- run2 ---\n%s",
			r1.FaultDump, r2.FaultDump)
	}
}

// TestReplayByteIdenticalBatched is the replay guarantee with batching
// enabled: the batcher's flush predicates read the chaos virtual clock,
// so batch boundaries — and therefore the order messages hit the fault
// machinery — are deterministic functions of simulated time and
// per-link send order. Two same-seed runs must produce byte-identical
// fault dumps, exactly as without batching.
func TestReplayByteIdenticalBatched(t *testing.T) {
	run := func() RunReport {
		fo := Options{Seed: 99, DelayProb: 0.5, ReorderProb: 0.3, DelayWindow: 2}
		rep := RunOne(Workload{Name: "spmd", Run: runSPMD}, 99,
			SweepOptions{Batch: true}, fo)
		if rep.Failed() {
			t.Fatalf("seeded batched run failed:\n%s%s", FormatViolations(rep.Violations), rep.FinishDump)
		}
		return rep
	}
	r1, r2 := run(), run()
	if len(r1.Faults) == 0 {
		t.Fatal("seed 99 injected no faults; the replay check is vacuous")
	}
	if !bytes.Equal(r1.FaultDump, r2.FaultDump) {
		t.Fatalf("same-seed batched dumps differ:\n--- run1 ---\n%s--- run2 ---\n%s",
			r1.FaultDump, r2.FaultDump)
	}
}

// TestRunOneWithObs exercises the replay configuration: observability
// attached, flight recorder timestamped by the virtual clock.
func TestRunOneWithObs(t *testing.T) {
	rep := RunOne(Workload{Name: "default", Run: runDefaultTree}, 3,
		SweepOptions{Obs: true}, FaultsFor(3, 4))
	if rep.Failed() {
		t.Fatalf("run failed:\n%s%s", FormatViolations(rep.Violations), rep.FinishDump)
	}
	if len(rep.FlightDump) == 0 {
		t.Fatal("no flight dump captured despite Obs")
	}
	if !bytes.HasPrefix(rep.FlightDump, []byte(`{"type":"apgas-flight"`)) {
		t.Fatalf("flight dump header malformed: %.80s", rep.FlightDump)
	}
}
