package chaos

// Deterministic fault derivation. Every fault decision is a pure
// function of (seed, src, dst, link sequence number): no shared RNG
// stream, no dependence on goroutine interleaving. Two runs that send
// the same k-th message on the same link — whatever else is happening
// concurrently — draw the same faults, which is what makes a chaos run
// replayable from its seed alone.

// splitmix64 is the SplitMix64 finalizer, a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultStream is a tiny deterministic stream of uniform draws for one
// message, keyed by (seed, src, dst, k).
type faultStream struct{ state uint64 }

func newFaultStream(seed int64, src, dst int, k uint64) *faultStream {
	z := splitmix64(uint64(seed))
	z = splitmix64(z ^ uint64(src)*0x9e3779b97f4a7c15)
	z = splitmix64(z ^ uint64(dst)*0xbf58476d1ce4e5b9)
	z = splitmix64(z ^ k)
	return &faultStream{state: z}
}

// next advances the stream.
func (s *faultStream) next() uint64 {
	s.state = splitmix64(s.state)
	return s.state
}

// unit draws a uniform float64 in [0, 1).
func (s *faultStream) unit() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn draws a uniform int in [0, n).
func (s *faultStream) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}
