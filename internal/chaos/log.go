package chaos

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// The fault log records fault *decisions*, not deliveries. A decision
// is made at send time under the link lock and is a pure function of
// (seed, src, dst, link sequence number), so as long as per-link send
// order is deterministic — which it is for structured workloads — the
// set of records is identical across replays of the same seed. The
// dump sorts records into the canonical (src, dst, linkSeq) order and
// stamps synthetic, strictly increasing seq/ts values, making the
// emitted bytes identical too, regardless of goroutine interleaving.
//
// The dump uses the apgas-flight JSONL format (see obs.FlightRecorder
// and cmd/tracecheck) so the existing tooling validates chaos dumps
// unmodified.

// A FaultKind names one class of injected fault.
type FaultKind uint8

const (
	FaultDelay FaultKind = iota
	FaultReorder
	FaultDup
	FaultDrop
	FaultPartition
	FaultSlow
	FaultHold
	FaultKill
	numFaultKinds
)

var faultNames = [numFaultKinds]string{
	FaultDelay:     "chaos.delay",
	FaultReorder:   "chaos.reorder",
	FaultDup:       "chaos.dup",
	FaultDrop:      "chaos.drop",
	FaultPartition: "chaos.partition",
	FaultSlow:      "chaos.slow",
	FaultHold:      "chaos.hold",
	FaultKill:      "chaos.kill",
}

// String returns the dump name of the fault kind.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("chaos.fault%d", k)
}

// faultRecord is one fault decision on one message.
type faultRecord struct {
	src, dst int
	linkSeq  uint64
	kind     FaultKind
	id       int   // handler ID the message carried
	param    int64 // kind-specific: delay in messages, hold slot, ...
}

// maxLogRecords bounds log memory for pathological sweeps. Runs that
// hit the cap report the overflow in the dump header's "dropped" field;
// byte-identical replay is only promised for runs below the cap.
const maxLogRecords = 1 << 20

// Log accumulates fault decisions for one chaos transport.
type Log struct {
	mu      sync.Mutex
	recs    []faultRecord
	dropped uint64
	counts  [numFaultKinds]uint64
}

func (l *Log) add(r faultRecord) {
	l.mu.Lock()
	l.counts[r.kind]++
	if len(l.recs) < maxLogRecords {
		l.recs = append(l.recs, r)
	} else {
		l.dropped++
	}
	l.mu.Unlock()
}

// Counts returns the number of decisions per fault kind, keyed by the
// dump name (e.g. "chaos.drop").
func (l *Log) Counts() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := make(map[string]uint64, numFaultKinds)
	for k, n := range l.counts {
		if n > 0 {
			m[FaultKind(k).String()] = n
		}
	}
	return m
}

// Len returns the number of recorded fault decisions.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// WriteDump writes the fault log as an apgas-flight JSONL document:
// one header line, then one instant event per fault decision in
// canonical (src, dst, linkSeq) order with synthetic seq/ts. The
// output is byte-identical across replays whenever per-link send order
// is (see the package comment).
func (l *Log) WriteDump(w io.Writer) error {
	l.mu.Lock()
	recs := make([]faultRecord, len(l.recs))
	copy(recs, l.recs)
	dropped := l.dropped
	l.mu.Unlock()

	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.linkSeq != b.linkSeq {
			return a.linkSeq < b.linkSeq
		}
		return a.kind < b.kind
	})
	if _, err := fmt.Fprintf(w,
		"{\"type\":\"apgas-flight\",\"version\":1,\"events\":%d,\"recorded\":%d,\"dropped\":%d}\n",
		len(recs), len(recs), dropped); err != nil {
		return err
	}
	for i, r := range recs {
		// seq strictly increasing, ts non-decreasing: both derived from
		// the canonical index so the bytes are replay-stable.
		if _, err := fmt.Fprintf(w,
			"{\"seq\":%d,\"ts\":%d,\"dur\":0,\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"name\":%q,\"cat\":\"chaos\",\"args\":{\"dst\":%d,\"id\":%d,\"param\":%d}}\n",
			i+1, int64(i+1)*tickScale, r.src, r.linkSeq, r.kind.String(), r.dst, r.id, r.param); err != nil {
			return err
		}
	}
	return nil
}
