package chaos

import "sync/atomic"

// VirtualClock is a logical clock for replayable runs. It advances by
// one tick per chaos transport decision rather than with wall time, so
// timestamps derived from it depend only on event counts, not on how
// fast the machine happens to run. Plug it into core.Config.Now and
// obs.FlightRecorder.SetNow during replay to get dumps whose times are
// stable across machines and runs.
//
// Ticks are scaled to a nominal nanosecond unit (1 tick = 1µs) so that
// downstream consumers that pretty-print durations produce sane output.
type VirtualClock struct {
	ticks atomic.Int64
}

// tickScale converts logical ticks to nominal nanoseconds.
const tickScale = 1000

// Tick advances the clock by one logical step and returns the new time.
func (c *VirtualClock) Tick() int64 {
	return c.ticks.Add(1) * tickScale
}

// Now returns the current logical time in nominal nanoseconds. Its
// signature matches core.Config.Now and obs.FlightRecorder.SetNow.
func (c *VirtualClock) Now() int64 {
	return c.ticks.Load() * tickScale
}
