package chaos

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/telemetry"
	"apgas/internal/x10rt"
)

// These tests close the loop between fault injection and diagnosis:
// when chaos drops a finish-protocol message, the telemetry stall
// watchdog must fire and its who-owes-whom dump must name the place
// whose snapshot went missing; and when chaos merely delays traffic
// that keeps progressing, the watchdog must stay silent.

// lockedBuf is an io.Writer safe for the watchdog goroutine.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *lockedBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *lockedBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestWatchdogNamesDroppedPlace drops the first finish-control message
// from place 2 to the root — the proxy's cumulative snapshot, the only
// way the root learns the remote activity finished. The run stalls,
// the watchdog fires, and its dump must blame place 2 and nobody else.
// ReleaseDropped then heals the network and the run completes cleanly.
func TestWatchdogNamesDroppedPlace(t *testing.T) {
	const places = 4
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{
		Seed:     1,
		DropProb: 1,
		MaxDrops: 1,
		Filter: func(src, dst int, id x10rt.HandlerID, class x10rt.Class) bool {
			return src == 2 && dst == 0 && class == x10rt.ControlClass
		},
	})
	rt, err := core.NewRuntime(core.Config{
		Places: places, WorkersPerPlace: 2, Transport: ct, CheckPatterns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rt.Close(); ct.Close() }()

	var out lockedBuf
	done := make(chan error, 1)
	go func() {
		done <- rt.Run(func(ctx *core.Ctx) {
			// FINISH_DEFAULT, promoted by the remote spawn; place 2's
			// completion snapshot is what chaos eats.
			if err := ctx.Finish(func(c *core.Ctx) {
				c.AtAsync(2, func(*core.Ctx) {})
			}); err != nil {
				panic(err)
			}
		})
	}()

	wd := telemetry.StartWatchdog(rt, telemetry.WatchdogOptions{
		Window:     75 * time.Millisecond,
		Poll:       15 * time.Millisecond,
		Out:        &out,
		FlightTail: -1,
	})
	defer wd.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for wd.Stalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if wd.Stalls() == 0 {
		t.Fatal("watchdog never fired on a dropped finish snapshot")
	}
	dump := out.String()
	if !strings.Contains(dump, "owes: place p2 pending=1") {
		t.Fatalf("dump does not blame place 2:\n%s", dump)
	}
	for _, wrong := range []string{"owes: place p1 ", "owes: place p3 "} {
		if strings.Contains(dump, wrong) {
			t.Fatalf("dump blames an innocent place (%q):\n%s", wrong, dump)
		}
	}
	if ct.DroppedCount() != 1 {
		t.Fatalf("morgue holds %d messages, want exactly the snapshot", ct.DroppedCount())
	}

	// Heal: the snapshot arrives late, the finish completes, and the
	// post-run state passes every invariant.
	ct.ReleaseDropped()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run failed after healing: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run still hung after ReleaseDropped")
	}
	ct.Drain()
	if vs := CheckAll(rt, ct); len(vs) > 0 {
		t.Fatalf("invariants violated after healed run:\n%s", FormatViolations(vs))
	}
}

// TestWatchdogSilentUnderDelays runs a computation that takes several
// watchdog windows end to end but keeps making progress through heavy
// chaos delays and a slow place. The watchdog must not fire: slow is
// not stalled.
func TestWatchdogSilentUnderDelays(t *testing.T) {
	const places = 3
	inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
	if err != nil {
		t.Fatal(err)
	}
	ct := Wrap(inner, Options{
		Seed:        7,
		DelayProb:   0.4,
		SlowPlace:   1,
		SlowLatency: 15 * time.Millisecond,
	})
	rt, err := core.NewRuntime(core.Config{
		Places: places, WorkersPerPlace: 2, Transport: ct, CheckPatterns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rt.Close(); ct.Close() }()

	var out lockedBuf
	wd := telemetry.StartWatchdog(rt, telemetry.WatchdogOptions{
		Window:     250 * time.Millisecond,
		Poll:       25 * time.Millisecond,
		Out:        &out,
		FlightTail: -1,
	})
	defer wd.Stop()

	// One long-lived finish whose root keeps processing events: ~20
	// sequential round trips through the slow place, each ticking the
	// root's Events counter well inside the watchdog window while the
	// whole run takes several windows.
	err = rt.Run(func(ctx *core.Ctx) {
		if err := ctx.Finish(func(c *core.Ctx) {
			for i := 0; i < 20; i++ {
				c.At(1, func(*core.Ctx) {})
			}
		}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := wd.Stalls(); n != 0 {
		t.Fatalf("watchdog fired %d times on a progressing run:\n%s", n, out.String())
	}
	ct.Drain()
	if vs := CheckAll(rt, ct); len(vs) > 0 {
		t.Fatalf("invariants violated:\n%s", FormatViolations(vs))
	}
}
