// Package chaos provides a seed-driven, deterministic fault-injection
// layer for the APGAS runtime, plus an explorer that sweeps workloads
// across many seeds and checks finish-protocol invariants after every
// run.
//
// The centerpiece is Transport, an x10rt.Transport wrapper that
// injects delay, reordering, duplication, drop-with-report, bounded
// partitions, and slow places. Every fault decision is a pure function
// of (seed, src, dst, link sequence number) — see rng.go — so a run is
// reproducible from its seed alone: re-running the same workload with
// the same seed replays the same faults, and the fault log's dump is
// byte-identical (log.go). Goroutine scheduling still varies between
// runs; what is pinned is which messages get faulted and how, which is
// what makes a failing seed debuggable.
//
// Faults fall into two groups:
//
//   - Deliverability-preserving: delay, reorder, slow place, bounded
//     partition. Every message is eventually delivered, so a correct
//     runtime must still terminate and pass all invariants. These are
//     what the seed explorer sweeps.
//   - Lossy: drop and duplicate. The runtime has no retry or dedup
//     layer (deliberately — the paper's protocols assume a reliable
//     transport), so these are for targeted tests: a drop should hang
//     the affected finish and trip the telemetry watchdog, naming the
//     place that owes events; ReleaseDropped then heals the run.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// HoldPlan configures the bounded schedule-permutation mode: the first
// N countable messages of the given class destined to place To are
// captured, and once all N have arrived they are forwarded in Perm
// order. This explores delivery orders of a small message set — e.g.
// the ctlDone credits of a SPMD finish — exhaustively rather than
// probabilistically.
type HoldPlan struct {
	To    int
	Class x10rt.Class
	N     int
	// Perm is a permutation of [0, N); index i of the capture order is
	// forwarded in position Perm's slot. Missing indices are forwarded
	// last in capture order.
	Perm []int
}

// KillPlan configures the place-death fault: when the Seq-th
// fault-eligible message on the (Src → Victim) link is sent, the victim
// place is killed instead of receiving it — the trigger is a pure
// function of per-link send order, so a replay kills at the same
// protocol point. After the kill, fault injection freezes entirely (no
// decisions, no link-sequence consumption): the fault dump is the
// deterministic pre-kill prefix plus one chaos.kill record, which is
// what keeps kill runs byte-identically replayable. A workload that
// never sends an eligible message on the trigger link is simply never
// killed and must pass its oracle unharmed.
type KillPlan struct {
	Victim int
	Src    int
	Seq    uint64
}

// Options configures a chaos Transport. The zero value injects nothing;
// each fault is enabled by its own field. All probabilities are per
// message, evaluated independently in a fixed order (partition, drop,
// dup, delay, reorder, slow — first match wins).
type Options struct {
	// Seed drives every fault decision. Two transports with equal
	// Options observing equal per-link send sequences make equal
	// decisions.
	Seed int64

	// DelayProb delays a message by 1..DelayWindow later link slots.
	DelayProb float64
	// DelayWindow bounds the delay in link messages (default 3).
	DelayWindow int
	// ReorderProb delays a message by exactly one link slot, swapping
	// it with its successor — the minimal reordering the finish
	// protocols must survive.
	ReorderProb float64
	// DupProb forwards a message twice. Only safe for idempotent
	// traffic (e.g. epoch-stamped snapshots); spawn messages are not
	// idempotent, so sweeps keep this at zero.
	DupProb float64
	// DropProb silently discards a message, recording it in the log
	// and parking the payload in a morgue; ReleaseDropped delivers the
	// morgue later ("heal"). Send still reports success, as a lossy
	// network would.
	DropProb float64
	// MaxDrops bounds the number of drops (0 = unlimited).
	MaxDrops int

	// Filter restricts which messages are fault-eligible; nil means
	// every countable message. It must be a deterministic function of
	// its arguments. Telemetry traffic is never faulted.
	Filter func(src, dst int, id x10rt.HandlerID, class x10rt.Class) bool

	// Cut, PartitionMsgs: while a link's message index is below
	// PartitionMsgs and the link crosses the cut (exactly one endpoint
	// in Cut), the message is held. The partition heals per link once
	// PartitionMsgs messages have been sent on it, and wholesale after
	// HealAfter wall time (default 100ms) — it is always bounded.
	Cut           []int
	PartitionMsgs int
	HealAfter     time.Duration

	// SlowLatency > 0 holds every message to or from SlowPlace for
	// that wall duration, modeling one straggler node (the paper's
	// "slow place" hazard for lifeline GLB).
	SlowPlace   int
	SlowLatency time.Duration

	// Kill enables the place-death fault. Requires an inner transport
	// implementing x10rt.PlaceKiller (the kill is a no-op otherwise).
	Kill *KillPlan

	// Hold enables schedule-permutation mode.
	Hold *HoldPlan
	// HoldGrace releases an incomplete hold buffer after this wall
	// time so a workload sending fewer than N messages cannot hang
	// (default 100ms).
	HoldGrace time.Duration

	// FlushEvery is the liveness ticker period (default 1ms): held
	// messages whose wall deadline has passed are force-delivered even
	// if no further link traffic arrives. It affects timing only,
	// never the fault log.
	FlushEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.DelayWindow <= 0 {
		o.DelayWindow = 3
	}
	if o.HealAfter <= 0 {
		o.HealAfter = 100 * time.Millisecond
	}
	if o.HoldGrace <= 0 {
		o.HoldGrace = 100 * time.Millisecond
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = time.Millisecond
	}
	return o
}

// heldMsg is a message parked in a link's holdback queue, the hold
// buffer, or the drop morgue.
type heldMsg struct {
	src, dst int
	id       x10rt.HandlerID
	payload  any
	bytes    int
	class    x10rt.Class
	seq      uint64 // link sequence number at send time
	// releaseSeq, when non-zero, releases the message once the link has
	// assigned sequence numbers beyond it. releaseAt, when non-zero,
	// releases it at that wall time (liveness fallback / timed holds).
	releaseSeq uint64
	releaseAt  time.Time
}

func (m *heldMsg) releasable(linkSeq uint64, now time.Time) bool {
	if m.releaseSeq > 0 && linkSeq > m.releaseSeq {
		return true
	}
	return !m.releaseAt.IsZero() && !now.Before(m.releaseAt)
}

// link is the per-(src,dst) state: a sequence counter driving the
// deterministic fault stream and a holdback queue of delayed messages.
type link struct {
	mu   sync.Mutex
	seq  uint64
	hold []heldMsg
}

// Transport wraps an inner x10rt.Transport with deterministic fault
// injection. Handlers are registered on the inner transport unchanged;
// only Send is intercepted. The wrapper passes traffic accounting
// through, so the telemetry plane's sum-equality invariant (Stats ==
// Σ PlaceStats) holds across it: dropped messages are counted nowhere,
// duplicated messages twice — consistently on both sides.
type Transport struct {
	inner x10rt.Transport
	opts  Options
	n     int
	clock VirtualClock
	log   Log
	start time.Time
	grace time.Duration // wall fallback for seq-triggered holds

	links []link
	inCut []bool
	drops atomic.Int64
	// frozen is set the moment any place dies (via the Kill plan or an
	// explicit KillPlace call): from then on Send passes straight
	// through, injecting nothing and consuming no link sequence numbers,
	// so the fault log stays the deterministic pre-kill prefix.
	frozen atomic.Bool

	morgueMu sync.Mutex
	morgue   []heldMsg

	holdMu    sync.Mutex
	holdBuf   []heldMsg
	holdDone  bool
	holdFirst time.Time

	stop     chan struct{}
	stopOnce sync.Once
	flushWG  sync.WaitGroup
}

// Wrap layers chaos fault injection over an inner transport.
func Wrap(inner x10rt.Transport, opts Options) *Transport {
	opts = opts.withDefaults()
	n := inner.NumPlaces()
	t := &Transport{
		inner: inner,
		opts:  opts,
		n:     n,
		start: time.Now(),
		grace: 5 * opts.FlushEvery,
		links: make([]link, n*n),
		inCut: make([]bool, n),
		stop:  make(chan struct{}),
	}
	if t.grace < 5*time.Millisecond {
		t.grace = 5 * time.Millisecond
	}
	for _, p := range opts.Cut {
		if p >= 0 && p < n {
			t.inCut[p] = true
		}
	}
	t.flushWG.Add(1)
	go t.flusher()
	return t
}

// Clock returns the transport's virtual clock (one tick per fault
// decision), for wiring into core.Config.Now / obs Flight.SetNow when
// replaying.
func (t *Transport) Clock() *VirtualClock { return &t.clock }

// FaultLog returns the deterministic fault log.
func (t *Transport) FaultLog() *Log { return &t.log }

// FaultCounts returns decision counts per fault kind.
func (t *Transport) FaultCounts() map[string]uint64 { return t.log.Counts() }

// Inner returns the wrapped transport.
func (t *Transport) Inner() x10rt.Transport { return t.inner }

// NumPlaces implements x10rt.Transport.
func (t *Transport) NumPlaces() int { return t.n }

// Register implements x10rt.Transport; handlers live on the inner
// transport and run on its dispatchers.
func (t *Transport) Register(id x10rt.HandlerID, h x10rt.Handler) error {
	return t.inner.Register(id, h)
}

// Stats implements x10rt.Transport (inner passthrough).
func (t *Transport) Stats() x10rt.Stats { return t.inner.Stats() }

// AttachMetrics implements x10rt.MetricSource when the inner transport
// does; otherwise it is a no-op.
func (t *Transport) AttachMetrics(r *obs.Registry) {
	if ms, ok := t.inner.(x10rt.MetricSource); ok {
		ms.AttachMetrics(r)
	}
}

// PlaceStats implements x10rt.PlaceMetricSource when the inner
// transport does; otherwise it reports zero.
func (t *Transport) PlaceStats(p int) x10rt.Stats {
	if ps, ok := t.inner.(x10rt.PlaceMetricSource); ok {
		return ps.PlaceStats(p)
	}
	return x10rt.Stats{}
}

// AttachPlaceMetrics implements x10rt.PlaceMetricSource passthrough.
func (t *Transport) AttachPlaceMetrics(p int, r *obs.Registry) {
	if ps, ok := t.inner.(x10rt.PlaceMetricSource); ok {
		ps.AttachPlaceMetrics(p, r)
	}
}

// AttachWireLedger implements x10rt.LedgerSink passthrough: the ledger
// observes what the inner transport actually carries, so dropped or
// held messages are (correctly) not attributed until forwarded, and
// attribution never influences a fault decision — replays stay
// byte-identical with the ledger attached.
func (t *Transport) AttachWireLedger(lg *x10rt.WireLedger) {
	if ls, ok := t.inner.(x10rt.LedgerSink); ok {
		ls.AttachWireLedger(lg)
	}
}

// SendOneSided implements x10rt.OneSidedSender passthrough. One-sided
// ops are never faulted and — critically for replay — never consume a
// link fault-stream sequence number: a run with one-sided traffic added
// keeps byte-identical fault decisions for its active messages, exactly
// like attaching a ledger.
func (t *Transport) SendOneSided(src, dst int, op *x10rt.OneSidedOp) error {
	os, ok := t.inner.(x10rt.OneSidedSender)
	if !ok {
		return fmt.Errorf("chaos: inner transport has no one-sided lane")
	}
	return os.SendOneSided(src, dst, op)
}

// AttachArenas implements x10rt.OneSidedSink passthrough.
func (t *Transport) AttachArenas(at *x10rt.ArenaTable) {
	if s, ok := t.inner.(x10rt.OneSidedSink); ok {
		s.AttachArenas(at)
	}
}

// eligible reports whether a message may be faulted at all.
func (t *Transport) eligible(src, dst int, id x10rt.HandlerID, class x10rt.Class) bool {
	if id == x10rt.HandlerTelemetry {
		return false // never perturb the observation plane
	}
	if t.opts.Filter != nil {
		return t.opts.Filter(src, dst, id, class)
	}
	return true
}

// Send implements x10rt.Transport. Fault-eligible messages claim the
// next link sequence number under the link lock and draw their fate
// from the deterministic stream; everything else passes straight
// through. Like the inner transport, Send never runs a handler on the
// calling goroutine — it only enqueues (possibly into a holdback
// queue), so the reentrancy invariant of ChanTransport is preserved.
func (t *Transport) Send(src, dst int, id x10rt.HandlerID, payload any, bytes int, class x10rt.Class) error {
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n || !t.eligible(src, dst, id, class) {
		return t.inner.Send(src, dst, id, payload, bytes, class)
	}
	if t.frozen.Load() {
		// Post-kill: injection is frozen (see KillPlan). The inner
		// transport fails sends to the dead place fast on its own.
		return t.inner.Send(src, dst, id, payload, bytes, class)
	}
	t.clock.Tick()
	now := time.Now()
	ls := &t.links[src*t.n+dst]
	ls.mu.Lock()
	k := ls.seq
	ls.seq++
	m := heldMsg{src: src, dst: dst, id: id, payload: payload, bytes: bytes, class: class, seq: k}

	if kp := t.opts.Kill; kp != nil && src == kp.Src && dst == kp.Victim && k == kp.Seq {
		// The trigger message is consumed by the kill: it died on the
		// wire with its destination. The kill itself runs outside the
		// link lock — the inner transport's death notification fans out
		// to handlers that may send.
		t.log.add(faultRecord{src: src, dst: dst, linkSeq: k, kind: FaultKill, id: int(id), param: int64(kp.Victim)})
		ls.mu.Unlock()
		t.frozen.Store(true)
		if pk, ok := t.inner.(x10rt.PlaceKiller); ok {
			_ = pk.KillPlace(kp.Victim)
		}
		return nil
	}

	forwardErr := t.decide(ls, m, k, now)
	// Whatever happened to this message, its sequence number advanced
	// the link: earlier holdbacks may now be due.
	relErr := t.releaseDueLocked(ls, now)
	ls.mu.Unlock()
	if forwardErr != nil {
		return forwardErr
	}
	return relErr
}

// decide applies at most one fault to m (first match wins) and either
// forwards, parks, or discards it. Called with ls.mu held.
func (t *Transport) decide(ls *link, m heldMsg, k uint64, now time.Time) error {
	// Schedule-permutation capture is plan-driven, not probabilistic.
	if t.tryHold(m) {
		return nil
	}
	// Bounded partition: deterministic by link position, heals by
	// message count or wall time.
	if t.opts.PartitionMsgs > 0 && t.inCut[m.src] != t.inCut[m.dst] && k < uint64(t.opts.PartitionMsgs) {
		m.releaseSeq = uint64(t.opts.PartitionMsgs)
		m.releaseAt = t.start.Add(t.opts.HealAfter)
		ls.hold = append(ls.hold, m)
		t.log.add(faultRecord{src: m.src, dst: m.dst, linkSeq: k, kind: FaultPartition, id: int(m.id), param: int64(k)})
		return nil
	}
	// Probabilistic faults draw from the per-message stream in a fixed
	// order so decisions depend only on (seed, src, dst, k).
	s := newFaultStream(t.opts.Seed, m.src, m.dst, k)
	uDrop, uDup, uDelay, uReorder := s.unit(), s.unit(), s.unit(), s.unit()
	delayAmt := 1 + s.intn(t.opts.DelayWindow)

	if uDrop < t.opts.DropProb && (t.opts.MaxDrops == 0 || t.drops.Load() < int64(t.opts.MaxDrops)) {
		t.drops.Add(1)
		t.morgueMu.Lock()
		t.morgue = append(t.morgue, m)
		t.morgueMu.Unlock()
		t.log.add(faultRecord{src: m.src, dst: m.dst, linkSeq: k, kind: FaultDrop, id: int(m.id)})
		return nil // drop-with-report: the sender sees success
	}
	if uDup < t.opts.DupProb {
		t.log.add(faultRecord{src: m.src, dst: m.dst, linkSeq: k, kind: FaultDup, id: int(m.id)})
		if err := t.forward(m); err != nil {
			return err
		}
		return t.forward(m)
	}
	if uDelay < t.opts.DelayProb {
		m.releaseSeq = k + uint64(delayAmt)
		m.releaseAt = now.Add(t.grace)
		ls.hold = append(ls.hold, m)
		t.log.add(faultRecord{src: m.src, dst: m.dst, linkSeq: k, kind: FaultDelay, id: int(m.id), param: int64(delayAmt)})
		return nil
	}
	if uReorder < t.opts.ReorderProb {
		m.releaseSeq = k + 1
		m.releaseAt = now.Add(t.grace)
		ls.hold = append(ls.hold, m)
		t.log.add(faultRecord{src: m.src, dst: m.dst, linkSeq: k, kind: FaultReorder, id: int(m.id), param: 1})
		return nil
	}
	if t.opts.SlowLatency > 0 && (m.src == t.opts.SlowPlace || m.dst == t.opts.SlowPlace) {
		m.releaseAt = now.Add(t.opts.SlowLatency)
		ls.hold = append(ls.hold, m)
		t.log.add(faultRecord{src: m.src, dst: m.dst, linkSeq: k, kind: FaultSlow, id: int(m.id), param: t.opts.SlowLatency.Microseconds()})
		return nil
	}
	return t.forward(m)
}

// tryHold captures m into the permutation buffer when the hold plan
// matches; returns true when the message was consumed.
func (t *Transport) tryHold(m heldMsg) bool {
	h := t.opts.Hold
	if h == nil || m.dst != h.To || m.class != h.Class {
		return false
	}
	t.holdMu.Lock()
	defer t.holdMu.Unlock()
	if t.holdDone {
		return false
	}
	if len(t.holdBuf) == 0 {
		t.holdFirst = time.Now()
	}
	t.log.add(faultRecord{src: m.src, dst: m.dst, linkSeq: m.seq, kind: FaultHold, id: int(m.id), param: int64(len(t.holdBuf))})
	t.holdBuf = append(t.holdBuf, m)
	if len(t.holdBuf) >= h.N {
		t.releaseHoldLocked()
	}
	return true
}

// releaseHoldLocked forwards the hold buffer in Perm order, then any
// leftovers in capture order. Called with holdMu held.
func (t *Transport) releaseHoldLocked() {
	sent := make([]bool, len(t.holdBuf))
	for _, idx := range t.opts.Hold.Perm {
		if idx >= 0 && idx < len(t.holdBuf) && !sent[idx] {
			sent[idx] = true
			t.forward(t.holdBuf[idx])
		}
	}
	for i, m := range t.holdBuf {
		if !sent[i] {
			t.forward(m)
		}
	}
	t.holdBuf = nil
	t.holdDone = true
}

// releaseDueLocked forwards every holdback whose release condition is
// met, preserving capture order. Called with ls.mu held.
func (t *Transport) releaseDueLocked(ls *link, now time.Time) error {
	if len(ls.hold) == 0 {
		return nil
	}
	var firstErr error
	kept := ls.hold[:0]
	for _, m := range ls.hold {
		if m.releasable(ls.seq, now) {
			// A held message bound for a place that died in the meantime
			// fails with ErrPlaceDead; that verdict belongs to the held
			// message, not to the unrelated send that triggered the
			// release, so it must not surface here.
			if err := t.forward(m); err != nil && firstErr == nil &&
				!errors.Is(err, x10rt.ErrPlaceDead) {
				firstErr = err
			}
		} else {
			kept = append(kept, m)
		}
	}
	ls.hold = kept
	return firstErr
}

// forward hands a message to the inner transport.
func (t *Transport) forward(m heldMsg) error {
	return t.inner.Send(m.src, m.dst, m.id, m.payload, m.bytes, m.class)
}

// flusher is the liveness loop: it periodically delivers holdbacks
// whose wall deadline has passed, so delayed or partitioned messages
// reach their destination even when link traffic stops. It changes
// delivery timing only — never the fault log.
func (t *Transport) flusher() {
	defer t.flushWG.Done()
	ticker := time.NewTicker(t.opts.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.flush(false)
		}
	}
}

// flush releases due holdbacks on every link (all of them when force
// is set) and an expired hold buffer; it returns how many messages it
// forwarded.
func (t *Transport) flush(force bool) int {
	now := time.Now()
	moved := 0
	for i := range t.links {
		ls := &t.links[i]
		ls.mu.Lock()
		if len(ls.hold) > 0 {
			kept := ls.hold[:0]
			for _, m := range ls.hold {
				if force || m.releasable(ls.seq, now) {
					t.forward(m)
					moved++
				} else {
					kept = append(kept, m)
				}
			}
			ls.hold = kept
		}
		ls.mu.Unlock()
	}
	t.holdMu.Lock()
	if !t.holdDone && len(t.holdBuf) > 0 && (force || now.Sub(t.holdFirst) > t.opts.HoldGrace) {
		moved += len(t.holdBuf)
		t.releaseHoldLocked()
	}
	t.holdMu.Unlock()
	return moved
}

// ReleaseDropped heals the network: every dropped message is forwarded
// to its destination in canonical (src, dst, seq) order. It returns
// the number of messages delivered.
func (t *Transport) ReleaseDropped() int {
	t.morgueMu.Lock()
	morgue := t.morgue
	t.morgue = nil
	t.morgueMu.Unlock()
	sort.Slice(morgue, func(i, j int) bool {
		a, b := morgue[i], morgue[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.seq < b.seq
	})
	for _, m := range morgue {
		t.forward(m)
	}
	return len(morgue)
}

// DroppedCount returns how many messages currently sit in the morgue.
func (t *Transport) DroppedCount() int {
	t.morgueMu.Lock()
	defer t.morgueMu.Unlock()
	return len(t.morgue)
}

// Drain force-delivers every holdback (healing partitions and expiring
// delays early) and then quiesces the inner transport, repeating until
// no new holdbacks appear — handlers running during the quiesce may
// send messages that get held in turn. Dropped messages stay dropped;
// deliver them explicitly with ReleaseDropped. Call Drain after a
// workload completes and before checking invariants.
func (t *Transport) Drain() {
	for i := 0; i < 64; i++ {
		moved := t.flush(true)
		if q, ok := t.inner.(interface{ Quiesce() }); ok {
			q.Quiesce()
		}
		if moved == 0 && t.flush(true) == 0 {
			return
		}
	}
}

// Quiesce lets code written against ChanTransport.Quiesce treat a
// chaos-wrapped transport the same way.
func (t *Transport) Quiesce() { t.Drain() }

// Flush forwards to the inner transport when it buffers sends
// (x10rt.Flusher), so the runtime's protocol flush points reach a
// batching layer below the chaos wrapper. Chaos's own holdbacks are
// deliberately NOT flushed here: a flush hint must not heal injected
// faults.
func (t *Transport) Flush(src int) error {
	if f, ok := t.inner.(x10rt.Flusher); ok {
		return f.Flush(src)
	}
	return nil
}

// KillPlace implements x10rt.PlaceKiller by delegating to the inner
// transport. Like a plan-triggered kill, an explicit kill freezes fault
// injection so the fault log stays deterministic.
func (t *Transport) KillPlace(p int) error {
	pk, ok := t.inner.(x10rt.PlaceKiller)
	if !ok {
		return fmt.Errorf("chaos: inner transport %T does not support KillPlace", t.inner)
	}
	t.frozen.Store(true)
	return pk.KillPlace(p)
}

// PlaceDead implements x10rt.PlaceKiller passthrough.
func (t *Transport) PlaceDead(p int) bool {
	if pk, ok := t.inner.(x10rt.PlaceKiller); ok {
		return pk.PlaceDead(p)
	}
	return false
}

// NotifyDeath implements x10rt.DeathNotifier passthrough, so a runtime
// stacked on a chaos wrapper still learns of place deaths.
func (t *Transport) NotifyDeath(fn func(dead, observer int)) {
	if dn, ok := t.inner.(x10rt.DeathNotifier); ok {
		dn.NotifyDeath(fn)
	}
}

// Close implements x10rt.Transport: it stops the flusher and closes
// the inner transport. Held and dropped messages are discarded.
func (t *Transport) Close() error {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.flushWG.Wait()
	})
	return t.inner.Close()
}
