package collectives

import (
	"testing"

	"apgas/internal/core"
)

func TestScatter(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n, root = 5, 2
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			var send [][]int
			if int(c.Place()) == root {
				send = make([][]int, n)
				for i := range send {
					send[i] = []int{i * 11, i*11 + 1}
				}
			}
			got := Scatter(team, c, root, send)
			me := int(c.Place())
			if len(got) != 2 || got[0] != me*11 || got[1] != me*11+1 {
				t.Errorf("place %d got %v", me, got)
			}
		})
	})
}

func TestGather(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n, root = 4, 1
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			me := int(c.Place())
			got := Gather(team, c, root, []int{me, me * me})
			if me != root {
				if got != nil {
					t.Errorf("non-root place %d got %v", me, got)
				}
				return
			}
			if len(got) != n {
				t.Fatalf("root got %d chunks", len(got))
			}
			for r := 0; r < n; r++ {
				if got[r][0] != r || got[r][1] != r*r {
					t.Errorf("chunk %d = %v", r, got[r])
				}
			}
		})
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n = 4
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			var send [][]float64
			if c.Place() == 0 {
				send = make([][]float64, n)
				for i := range send {
					send[i] = []float64{float64(i), float64(i) / 2}
				}
			}
			mine := Scatter(team, c, 0, send)
			back := Gather(team, c, 0, mine)
			if c.Place() == 0 {
				for i := range back {
					if back[i][0] != float64(i) || back[i][1] != float64(i)/2 {
						t.Errorf("round trip chunk %d = %v", i, back[i])
					}
				}
			}
		})
	})
}
