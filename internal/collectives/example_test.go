package collectives_test

import (
	"fmt"

	"apgas/internal/collectives"
	"apgas/internal/core"
)

// The K-Means communication pattern of §7: every place contributes local
// sums, and two all-reduces produce the global averages everywhere.
func ExampleAllReduce() {
	rt, err := core.NewRuntime(core.Config{Places: 4})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	team := collectives.New(rt, core.WorldGroup(rt), collectives.ModeNative)

	_ = rt.Run(func(ctx *core.Ctx) {
		_ = ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *core.Ctx) {
					localSum := []float64{float64(cc.Place() + 1)} // 1+2+3+4
					global := collectives.AllReduce(team, cc, localSum,
						func(a, b float64) float64 { return a + b })
					if cc.Place() == 0 {
						fmt.Println("global sum:", global[0])
					}
				})
			}
		})
	})
	// Output: global sum: 10
}

// The pivot search of the paper's HPL: a max-location reduction over a
// process column.
func ExampleAllReduceMaxLoc() {
	rt, err := core.NewRuntime(core.Config{Places: 3})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	team := collectives.New(rt, core.WorldGroup(rt), collectives.ModeNative)
	_ = rt.Run(func(ctx *core.Ctx) {
		_ = ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *core.Ctx) {
					candidate := float64(cc.Place()) // place 2 wins
					win := collectives.AllReduceMaxLoc(team, cc, candidate, int(cc.Place())*10)
					if cc.Place() == 0 {
						fmt.Printf("pivot at rank %d (index %d)\n", win.Rank, win.Index)
					}
				})
			}
		})
	})
	// Output: pivot at rank 2 (index 20)
}
