// Package collectives provides X10-style teams (x10.util.Team, §3.3 of
// "X10 and APGAS at Petascale"): collective operations — barrier,
// broadcast, reduce, all-reduce, all-to-all, all-gather — over a group of
// places.
//
// Like the paper's runtime, a team has two implementations:
//
//   - ModeNative maps operations onto the "hardware" fast path. On this
//     substrate the hardware is the shared memory of the hosting process,
//     so native collectives combine contributions through a shared
//     rendezvous structure, the analogue of the Torrent's hardware
//     collective acceleration.
//   - ModeEmulated is the portable emulation layer built exclusively on
//     point-to-point active messages (binomial trees for reduce and
//     broadcast, direct exchange for all-to-all). It is what X10RT falls
//     back to on networks without collective hardware.
//
// All members must call each collective in the same order with compatible
// arguments (the standard SPMD contract); one activity per member place
// participates.
package collectives

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// Mode selects the collective implementation.
type Mode int

const (
	// ModeNative uses the shared-memory fast path.
	ModeNative Mode = iota
	// ModeEmulated uses point-to-point active messages only.
	ModeEmulated
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeNative {
		return "native"
	}
	return "emulated"
}

// Team is a group of places participating in collective operations.
type Team struct {
	rt      *core.Runtime
	id      uint64
	group   core.PlaceGroup
	mode    Mode
	shared  *sharedState
	locals  []*teamLocal // indexed by place
	members []core.Place
	m       teamMetrics
}

// teamMetrics caches the runtime's observability handles so each
// collective costs one counter increment (and, when tracing, one span)
// per participating member. All handles are nil-safe no-ops when the
// runtime has no observability attached.
type teamMetrics struct {
	tr    *obs.Tracer
	prof  *obs.Profiler
	ops   map[string]*obs.Counter // team.<op> -> per-member call count
	kinds map[string]string       // op -> "collective.<op>" pprof kind label
}

func newTeamMetrics(rt *core.Runtime) teamMetrics {
	tm := teamMetrics{
		tr:    rt.Tracer(),
		prof:  rt.Profiler(),
		ops:   make(map[string]*obs.Counter),
		kinds: make(map[string]string),
	}
	reg := rt.Obs().Registry()
	for _, op := range []string{"barrier", "reduce", "allreduce", "broadcast", "allgather", "alltoall"} {
		tm.ops[op] = reg.Counter("team." + op)
		tm.kinds[op] = "collective." + op
	}
	return tm
}

// profOp runs one collective op body with the pprof kind label switched
// to collective.<op> (place, pattern, and app labels stay inherited
// from the calling activity), so profile samples of combine functions
// and rendezvous waits partition by collective operation. A plain call
// when profiling is off.
func (t *Team) profOp(c *core.Ctx, op string, fn func()) {
	if pr := t.m.prof; pr != nil {
		pr.DoKind(c.ProfileContext(), t.m.kinds[op], func(pc context.Context) {
			old := c.SwapProfileContext(pc)
			defer c.SwapProfileContext(old)
			fn()
		})
		return
	}
	fn()
}

// opDone records one collective call by the calling member: bump the
// team.<op> counter and, when tracing, emit a span from t0 (obtained via
// t.m.tr.Now() at operation entry) to now covering this member's
// participation, including the rendezvous wait.
func (t *Team) opDone(c *core.Ctx, op string, t0 int64) {
	t.m.ops[op].Inc()
	if tr := t.m.tr; tr != nil {
		// The span hangs under the calling activity so collective fan-in
		// time is attributable on the finish tree's critical path.
		tr.CompleteEdge("team."+op, "team", int(c.Place()), tr.NextID(), t0,
			c.TraceSpan(), obs.EdgeChild,
			obs.Arg{Key: "members", Val: int64(t.Size())},
			obs.Arg{Key: "mode", Val: int64(t.mode)})
	}
}

// manager routes emulated collective traffic for one runtime; the first
// team created on a runtime registers the transport handler.
type manager struct {
	mu    sync.Mutex
	next  uint64
	teams map[uint64]*Team
}

var managers sync.Map // *core.Runtime -> *manager

func managerFor(rt *core.Runtime) *manager {
	if m, ok := managers.Load(rt); ok {
		return m.(*manager)
	}
	m := &manager{teams: make(map[uint64]*Team)}
	actual, loaded := managers.LoadOrStore(rt, m)
	mgr := actual.(*manager)
	if !loaded {
		if err := rt.Transport().Register(x10rt.HandlerTeamCtl, mgr.dispatch); err != nil {
			panic(fmt.Sprintf("collectives: register handler: %v", err))
		}
	}
	return mgr
}

func (m *manager) dispatch(src, dst int, payload any) {
	env := payload.(envelope)
	m.mu.Lock()
	t := m.teams[env.Team]
	m.mu.Unlock()
	if t == nil {
		panic(fmt.Sprintf("collectives: message for unknown team %d", env.Team))
	}
	if tr := t.m.tr; tr != nil {
		tr.RecvCtx(env.TC, "flow.team", "collective", dst, 0,
			obs.Arg{Key: "src", Val: int64(src)})
	}
	t.locals[dst].put(env.K, env.Payload)
}

// New creates a team over the given group. World teams are the common
// case: New(rt, core.WorldGroup(rt), mode).
func New(rt *core.Runtime, group core.PlaceGroup, mode Mode) *Team {
	mgr := managerFor(rt)
	t := &Team{
		rt:      rt,
		group:   group,
		mode:    mode,
		members: group.Places(),
	}
	t.m = newTeamMetrics(rt)
	t.shared = newSharedState(group.Size())
	t.locals = make([]*teamLocal, rt.NumPlaces())
	for i := range t.locals {
		t.locals[i] = newTeamLocal()
	}
	mgr.mu.Lock()
	mgr.next++
	t.id = mgr.next
	mgr.teams[t.id] = t
	mgr.mu.Unlock()
	return t
}

// Size returns the number of members.
func (t *Team) Size() int { return t.group.Size() }

// Mode returns the implementation mode.
func (t *Team) Mode() Mode { return t.mode }

// rank returns the caller's member index, panicking for non-members (the
// analogue of calling a Team operation from a place outside the team).
func (t *Team) rank(c *core.Ctx) int {
	r := t.group.IndexOf(c.Place())
	if r < 0 {
		panic(fmt.Sprintf("collectives: place %d is not a member of the team", c.Place()))
	}
	return r
}

// nextSeq returns this member's next collective sequence number. Matching
// sequence numbers across members identify one collective instance.
func (t *Team) nextSeq(c *core.Ctx) uint64 {
	tl := t.locals[c.Place()]
	tl.mu.Lock()
	tl.seq++
	s := tl.seq
	tl.mu.Unlock()
	return s
}

// Barrier blocks until every member has entered it.
func (t *Team) Barrier(c *core.Ctx) {
	defer t.opDone(c, "barrier", t.m.tr.Now())
	AllReduce(t, c, []struct{}{}, func(a, b struct{}) struct{} { return a })
}

// Reduce combines the members' vals element-wise with op and returns the
// result at the root member (the member with rank rootRank); other members
// receive nil. vals must have equal length at every member.
func Reduce[T any](t *Team, c *core.Ctx, rootRank int, vals []T, op func(T, T) T) []T {
	defer t.opDone(c, "reduce", t.m.tr.Now())
	var out []T
	t.profOp(c, "reduce", func() { out = reduceImpl(t, c, rootRank, vals, op) })
	return out
}

func reduceImpl[T any](t *Team, c *core.Ctx, rootRank int, vals []T, op func(T, T) T) []T {
	seq := t.nextSeq(c)
	me := t.rank(c)
	if t.mode == ModeNative {
		res := t.shared.rendezvous(c, me, seq, clone(vals), func(slots []any) any {
			return combineSlots(slots, op)
		})
		if me == rootRank {
			return res.([]T)
		}
		return nil
	}
	part := emulatedReduceToZero(t, c, me, seq, clone(vals), op)
	// Rank 0 holds the result; relocate to rootRank if different.
	if rootRank == 0 {
		return part
	}
	if me == 0 {
		sendChunk(t, c, t.members[rootRank], key{Seq: seq, Tag: tagMove, Src: 0}, part)
		return nil
	}
	if me == rootRank {
		return recvAs[[]T](t, c, key{Seq: seq, Tag: tagMove, Src: 0})
	}
	return nil
}

// AllReduce combines the members' vals element-wise with op; every member
// receives the combined vector.
func AllReduce[T any](t *Team, c *core.Ctx, vals []T, op func(T, T) T) []T {
	defer t.opDone(c, "allreduce", t.m.tr.Now())
	var out []T
	t.profOp(c, "allreduce", func() { out = allReduceImpl(t, c, vals, op) })
	return out
}

func allReduceImpl[T any](t *Team, c *core.Ctx, vals []T, op func(T, T) T) []T {
	seq := t.nextSeq(c)
	me := t.rank(c)
	if t.mode == ModeNative {
		res := t.shared.rendezvous(c, me, seq, clone(vals), func(slots []any) any {
			return combineSlots(slots, op)
		})
		return clone(res.([]T))
	}
	part := emulatedReduceToZero(t, c, me, seq, clone(vals), op)
	return emulatedBroadcastFromZero(t, c, me, seq, part)
}

// Broadcast distributes the root member's vals to every member; the
// argument is ignored at non-root members.
func Broadcast[T any](t *Team, c *core.Ctx, rootRank int, vals []T) []T {
	defer t.opDone(c, "broadcast", t.m.tr.Now())
	var out []T
	t.profOp(c, "broadcast", func() { out = broadcastImpl(t, c, rootRank, vals) })
	return out
}

func broadcastImpl[T any](t *Team, c *core.Ctx, rootRank int, vals []T) []T {
	seq := t.nextSeq(c)
	me := t.rank(c)
	if t.mode == ModeNative {
		var contrib any
		if me == rootRank {
			contrib = clone(vals)
		}
		res := t.shared.rendezvous(c, me, seq, contrib, func(slots []any) any {
			return slots[rootRank]
		})
		return clone(res.([]T))
	}
	// Move root's data to rank 0, then binomial broadcast.
	var at0 []T
	switch {
	case rootRank == 0:
		if me == 0 {
			at0 = clone(vals)
		}
	case me == rootRank:
		sendChunk(t, c, t.members[0], key{Seq: seq, Tag: tagMove, Src: me}, clone(vals))
	case me == 0:
		at0 = recvAs[[]T](t, c, key{Seq: seq, Tag: tagMove, Src: rootRank})
	}
	return emulatedBroadcastFromZero(t, c, me, seq, at0)
}

// AllGather concatenates every member's vals in rank order; every member
// receives the full slice of slices.
func AllGather[T any](t *Team, c *core.Ctx, vals []T) [][]T {
	defer t.opDone(c, "allgather", t.m.tr.Now())
	var out [][]T
	t.profOp(c, "allgather", func() { out = allGatherImpl(t, c, vals) })
	return out
}

func allGatherImpl[T any](t *Team, c *core.Ctx, vals []T) [][]T {
	seq := t.nextSeq(c)
	me := t.rank(c)
	n := t.Size()
	if t.mode == ModeNative {
		res := t.shared.rendezvous(c, me, seq, clone(vals), func(slots []any) any {
			out := make([][]T, len(slots))
			for i, s := range slots {
				out[i] = s.([]T)
			}
			return out
		})
		parts := res.([][]T)
		out := make([][]T, n)
		for i := range parts {
			out[i] = clone(parts[i])
		}
		return out
	}
	// Emulated: direct exchange (each member sends to all, receives all).
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		sendChunk(t, c, t.members[r], key{Seq: seq, Tag: tagExchange, Src: me}, clone(vals))
	}
	out := make([][]T, n)
	out[me] = clone(vals)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		out[r] = recvAs[[]T](t, c, key{Seq: seq, Tag: tagExchange, Src: r})
	}
	return out
}

// AllToAll performs the personalized exchange at the heart of the global
// FFT transpose: member i's send[j] becomes member j's result[i]. send
// must have exactly Size() chunks.
func AllToAll[T any](t *Team, c *core.Ctx, send [][]T) [][]T {
	n := t.Size()
	if len(send) != n {
		panic(fmt.Sprintf("collectives: AllToAll needs %d chunks, got %d", n, len(send)))
	}
	defer t.opDone(c, "alltoall", t.m.tr.Now())
	var out [][]T
	t.profOp(c, "alltoall", func() { out = allToAllImpl(t, c, send) })
	return out
}

func allToAllImpl[T any](t *Team, c *core.Ctx, send [][]T) [][]T {
	n := t.Size()
	seq := t.nextSeq(c)
	me := t.rank(c)
	if t.mode == ModeNative {
		contrib := make([]any, n)
		for j := range send {
			contrib[j] = clone(send[j])
		}
		res := t.shared.rendezvous(c, me, seq, contrib, func(slots []any) any {
			return slots // transpose happens on read-out
		})
		slots := res.([]any)
		out := make([][]T, n)
		for i := 0; i < n; i++ {
			out[i] = clone(slots[i].([]any)[me].([]T))
		}
		return out
	}
	out := make([][]T, n)
	out[me] = clone(send[me])
	for j := 0; j < n; j++ {
		if j == me {
			continue
		}
		sendChunk(t, c, t.members[j], key{Seq: seq, Tag: tagExchange, Src: me}, clone(send[j]))
	}
	for i := 0; i < n; i++ {
		if i == me {
			continue
		}
		out[i] = recvAs[[]T](t, c, key{Seq: seq, Tag: tagExchange, Src: i})
	}
	return out
}

// IndexedValue pairs a value with the rank that contributed it, for
// min/max-location reductions (HPL's pivot search).
type IndexedValue struct {
	Value float64
	Rank  int
	Index int
}

// AllReduceMaxLoc returns, at every member, the maximum contributed value
// together with its contributor rank and caller-supplied index.
func AllReduceMaxLoc(t *Team, c *core.Ctx, value float64, index int) IndexedValue {
	me := t.rank(c)
	in := []IndexedValue{{Value: value, Rank: me, Index: index}}
	out := AllReduce(t, c, in, func(a, b IndexedValue) IndexedValue {
		if b.Value > a.Value || (b.Value == a.Value && b.Rank < a.Rank) {
			return b
		}
		return a
	})
	return out[0]
}

// --- helpers ---

func clone[T any](v []T) []T {
	out := make([]T, len(v))
	copy(out, v)
	return out
}

// combineSlots element-wise reduces the non-nil member contributions.
func combineSlots[T any](slots []any, op func(T, T) T) []T {
	var acc []T
	for _, s := range slots {
		if s == nil {
			continue
		}
		v := s.([]T)
		if acc == nil {
			acc = clone(v)
			continue
		}
		if len(v) != len(acc) {
			panic(fmt.Sprintf("collectives: mismatched reduce lengths %d vs %d", len(v), len(acc)))
		}
		for i := range acc {
			acc[i] = op(acc[i], v[i])
		}
	}
	return acc
}

// elemBytes models the wire size of a slice of T.
func elemBytes[T any](n int) int {
	return int(reflect.TypeFor[T]().Size()) * n
}

// sharedState is the native-mode rendezvous: per-sequence slots where
// members deposit contributions; the last arriver combines them.
type sharedState struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	ops  map[uint64]*opInstance
}

type opInstance struct {
	arrived int
	read    int
	slots   []any
	done    bool
	result  any
}

func newSharedState(n int) *sharedState {
	s := &sharedState{n: n, ops: make(map[uint64]*opInstance)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// rendezvous deposits contrib for (member me, collective seq), has the last
// arriver compute combine(slots), and returns the result to every member.
func (s *sharedState) rendezvous(c *core.Ctx, me int, seq uint64, contrib any,
	combine func([]any) any) any {
	var result any
	c.Blocking(func() {
		s.mu.Lock()
		op, ok := s.ops[seq]
		if !ok {
			op = &opInstance{slots: make([]any, s.n)}
			s.ops[seq] = op
		}
		op.slots[me] = contrib
		op.arrived++
		if op.arrived == s.n {
			op.result = combine(op.slots)
			op.done = true
			s.cond.Broadcast()
		}
		for !op.done {
			s.cond.Wait()
		}
		result = op.result
		op.read++
		if op.read == s.n {
			delete(s.ops, seq)
		}
		s.mu.Unlock()
	})
	return result
}
