package collectives

import (
	"sync/atomic"
	"testing"

	"apgas/internal/core"
)

// TestTwoTeamsInterleaved drives two overlapping teams from the same SPMD
// activities, checking sequence isolation between teams.
func TestTwoTeamsInterleaved(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n = 6
		rt := newRT(t, n)
		world := New(rt, core.WorldGroup(rt), mode)
		evens, err := core.NewPlaceGroup([]core.Place{0, 2, 4})
		if err != nil {
			t.Fatal(err)
		}
		evenTeam := New(rt, evens, mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			for round := 1; round <= 10; round++ {
				sum := AllReduce(world, c, []int{round}, func(a, b int) int { return a + b })
				if sum[0] != round*n {
					t.Errorf("world round %d: %d", round, sum[0])
					return
				}
				if int(c.Place())%2 == 0 {
					es := AllReduce(evenTeam, c, []int{round}, func(a, b int) int { return a + b })
					if es[0] != round*3 {
						t.Errorf("even round %d: %d", round, es[0])
						return
					}
				}
			}
		})
	})
}

// TestLargePayloadAllToAll pushes sizable chunks through the exchange.
func TestLargePayloadAllToAll(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n, chunk = 4, 4096
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			me := int(c.Place())
			send := make([][]float64, n)
			for j := 0; j < n; j++ {
				send[j] = make([]float64, chunk)
				for i := range send[j] {
					send[j][i] = float64(me*1000 + j)
				}
			}
			got := AllToAll(team, c, send)
			for i := 0; i < n; i++ {
				if len(got[i]) != chunk {
					t.Errorf("chunk %d has %d elems", i, len(got[i]))
					return
				}
				if got[i][0] != float64(i*1000+me) || got[i][chunk-1] != float64(i*1000+me) {
					t.Errorf("chunk %d content wrong: %v", i, got[i][0])
					return
				}
			}
		})
	})
}

// TestCollectivesUnderMultipleWorkers: WorkersPerPlace > 1 must not break
// the one-activity-per-member contract as long as only one activity per
// place participates.
func TestCollectivesUnderMultipleWorkers(t *testing.T) {
	const n = 4
	rt, err := core.NewRuntime(core.Config{Places: n, WorkersPerPlace: 3, CheckPatterns: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	team := New(rt, core.WorldGroup(rt), ModeNative)
	var busy atomic.Int64
	rerr := rt.Run(func(ctx *core.Ctx) {
		err := ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, func(cc *core.Ctx) {
					// Extra local activities keep the other workers busy.
					cc.Async(func(*core.Ctx) { busy.Add(1) })
					got := AllReduce(team, cc, []int{1}, func(a, b int) int { return a + b })
					if got[0] != n {
						t.Errorf("place %d: got %d", cc.Place(), got[0])
					}
				})
			}
		})
		if err != nil {
			t.Errorf("finish: %v", err)
		}
	})
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	if busy.Load() != n {
		t.Errorf("busy = %d", busy.Load())
	}
}
