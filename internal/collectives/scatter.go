package collectives

import (
	"fmt"

	"apgas/internal/core"
)

// Scatter distributes the root member's chunks: member i receives
// send[i]. send is ignored at non-root members and must have exactly
// Size() chunks at the root.
func Scatter[T any](t *Team, c *core.Ctx, rootRank int, send [][]T) []T {
	seq := t.nextSeq(c)
	me := t.rank(c)
	n := t.Size()
	if me == rootRank && len(send) != n {
		panic(fmt.Sprintf("collectives: Scatter needs %d chunks, got %d", n, len(send)))
	}
	if t.mode == ModeNative {
		var contrib any
		if me == rootRank {
			chunks := make([]any, n)
			for i := range send {
				chunks[i] = clone(send[i])
			}
			contrib = chunks
		}
		res := t.shared.rendezvous(c, me, seq, contrib, func(slots []any) any {
			return slots[rootRank]
		})
		return clone(res.([]any)[me].([]T))
	}
	if me == rootRank {
		for r := 0; r < n; r++ {
			if r == me {
				continue
			}
			sendChunk(t, c, t.members[r], key{Seq: seq, Tag: tagMove, Src: me}, clone(send[r]))
		}
		return clone(send[me])
	}
	return recvAs[[]T](t, c, key{Seq: seq, Tag: tagMove, Src: rootRank})
}

// Gather collects every member's vals at the root member, in rank order;
// non-root members receive nil.
func Gather[T any](t *Team, c *core.Ctx, rootRank int, vals []T) [][]T {
	seq := t.nextSeq(c)
	me := t.rank(c)
	n := t.Size()
	if t.mode == ModeNative {
		res := t.shared.rendezvous(c, me, seq, clone(vals), func(slots []any) any {
			return slots
		})
		if me != rootRank {
			return nil
		}
		slots := res.([]any)
		out := make([][]T, n)
		for i := range slots {
			out[i] = clone(slots[i].([]T))
		}
		return out
	}
	if me != rootRank {
		sendChunk(t, c, t.members[rootRank], key{Seq: seq, Tag: tagMove, Src: me}, clone(vals))
		return nil
	}
	out := make([][]T, n)
	out[me] = clone(vals)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		out[r] = recvAs[[]T](t, c, key{Seq: seq, Tag: tagMove, Src: r})
	}
	return out
}
