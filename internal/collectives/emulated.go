package collectives

import (
	"fmt"
	"sync"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// This file is the point-to-point emulation layer: the implementation a
// Team falls back to when the "hardware" (shared-memory) path is disabled.
// Reduce and broadcast use binomial trees over member ranks; the exchange
// collectives send chunks directly. All traffic flows through the core
// runtime's active messages, so it is visible to transport statistics and
// subject to injected latency — which is what the Team ablation benchmarks
// measure.

// tag discriminates message roles within one collective sequence number.
type tag uint8

const (
	tagReduce tag = iota
	tagBcast
	tagExchange
	tagMove
)

// key identifies one expected message within a team.
type key struct {
	Seq uint64
	Tag tag
	Src int
}

// teamLocal is each member place's mailbox for emulated collectives.
type teamLocal struct {
	mu   sync.Mutex
	cond *sync.Cond
	seq  uint64
	box  map[key]any
}

func newTeamLocal() *teamLocal {
	tl := &teamLocal{box: make(map[key]any)}
	tl.cond = sync.NewCond(&tl.mu)
	return tl
}

func (tl *teamLocal) put(k key, v any) {
	tl.mu.Lock()
	tl.box[k] = v
	tl.cond.Broadcast()
	tl.mu.Unlock()
}

func (tl *teamLocal) take(k key) any {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	for {
		if v, ok := tl.box[k]; ok {
			delete(tl.box, k)
			return v
		}
		tl.cond.Wait()
	}
}

// sendChunk ships vals to the teamLocal mailbox at dst under k.
func sendChunk[V any](t *Team, c *core.Ctx, dst core.Place, k key, vals []V) {
	t.send(c, dst, k, vals, elemBytes[V](len(vals)))
}

// recvAs blocks until the message under k arrives at the caller's place.
func recvAs[V any](t *Team, c *core.Ctx, k key) V {
	var out V
	tl := t.locals[c.Place()]
	c.Blocking(func() { out = tl.take(k).(V) })
	return out
}

// envelope is the wire format of emulated collective traffic.
type envelope struct {
	Team    uint64
	K       key
	Payload any
	// TC carries the sender's distributed trace context; zero unless
	// distributed tracing is enabled (gob omits zero-valued fields).
	TC obs.SpanContext
}

// send ships a payload to the teamLocal mailbox at dst under k, directly
// over the transport. Like the PAMI collectives the paper's teams map to,
// this traffic lives below finish: no termination-detection events are
// generated, so team operations are usable inside any finish pattern
// (including FINISH_SPMD bodies).
func (t *Team) send(c *core.Ctx, dst core.Place, k key, payload any, bytes int) {
	env := envelope{Team: t.id, K: k, Payload: payload}
	if dst != c.Place() {
		env.TC = t.m.tr.SendCtx("flow.team", "collective", int(c.Place()), c.TraceSpan(),
			obs.Arg{Key: "dst", Val: int64(dst)})
	}
	err := t.rt.Transport().Send(int(c.Place()), int(dst), x10rt.HandlerTeamCtl,
		env, bytes, x10rt.CollectiveClass)
	if err != nil {
		panic(fmt.Sprintf("collectives: send: %v", err))
	}
}

// emulatedReduceToZero runs a binomial-tree reduction toward rank 0 and
// returns the full result at rank 0 (nil elsewhere).
func emulatedReduceToZero[V any](t *Team, c *core.Ctx, me int, seq uint64, acc []V, op func(V, V) V) []V {
	n := t.Size()
	for offset := 1; offset < n; offset *= 2 {
		if me%(2*offset) == 0 {
			src := me + offset
			if src < n {
				part := recvAs[[]V](t, c, key{Seq: seq, Tag: tagReduce, Src: src})
				if acc == nil {
					acc = part
				} else {
					for i := range acc {
						acc[i] = op(acc[i], part[i])
					}
				}
			}
		} else {
			dst := me - offset
			t.send(c, t.members[dst], key{Seq: seq, Tag: tagReduce, Src: me}, acc,
				elemBytes[V](len(acc)))
			return nil
		}
	}
	if me == 0 {
		return acc
	}
	return nil
}

// emulatedBroadcastFromZero distributes rank 0's vals down a binomial tree;
// every member returns the vector.
func emulatedBroadcastFromZero[V any](t *Team, c *core.Ctx, me int, seq uint64, vals []V) []V {
	n := t.Size()
	// Highest power of two covering n.
	top := 1
	for top < n {
		top *= 2
	}
	if me != 0 {
		vals = recvAs[[]V](t, c, key{Seq: seq, Tag: tagBcast, Src: -1})
	}
	// Forward to children: me + offset for offsets below my "join" bit.
	start := top
	if me != 0 {
		// me joined at its lowest set bit; it forwards smaller offsets.
		start = me & (-me) // lowest set bit
	}
	for offset := start / 2; offset >= 1; offset /= 2 {
		dst := me + offset
		if dst < n {
			t.send(c, t.members[dst], key{Seq: seq, Tag: tagBcast, Src: -1}, vals,
				elemBytes[V](len(vals)))
		}
	}
	return vals
}
