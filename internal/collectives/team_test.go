package collectives

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"apgas/internal/core"
)

func newRT(t *testing.T, places int) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{Places: places, CheckPatterns: true})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// runSPMD launches body at every place under a finish and fails the test on
// error — the harness every collective test uses.
func runSPMD(t *testing.T, rt *core.Runtime, body func(*core.Ctx)) {
	t.Helper()
	err := rt.Run(func(ctx *core.Ctx) {
		if err := ctx.Finish(func(c *core.Ctx) {
			for _, p := range c.Places() {
				c.AtAsync(p, body)
			}
		}); err != nil {
			t.Errorf("spmd finish: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func bothModes(t *testing.T, f func(t *testing.T, mode Mode)) {
	for _, m := range []Mode{ModeNative, ModeEmulated} {
		m := m
		t.Run(m.String(), func(t *testing.T) { f(t, m) })
	}
}

func TestBarrier(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n = 7
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		var entered atomic.Int64
		runSPMD(t, rt, func(c *core.Ctx) {
			for round := 0; round < 3; round++ {
				entered.Add(1)
				team.Barrier(c)
				// After the barrier, everyone from this round has entered.
				if got := entered.Load(); got < int64((round+1)*n) {
					t.Errorf("round %d: entered=%d, want >= %d", round, got, (round+1)*n)
				}
			}
		})
	})
}

func TestAllReduceSum(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n = 6
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			me := float64(c.Place())
			got := AllReduce(team, c, []float64{me, 2 * me, 1}, func(a, b float64) float64 { return a + b })
			want := []float64{15, 30, 6} // sum 0..5, sum 2*(0..5), n
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("place %d: got[%d]=%v want %v", c.Place(), i, got[i], want[i])
				}
			}
		})
	})
}

func TestAllReduceMin(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rt := newRT(t, 5)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			v := int64(10 - c.Place())
			got := AllReduce(team, c, []int64{v}, func(a, b int64) int64 {
				if a < b {
					return a
				}
				return b
			})
			if got[0] != 6 {
				t.Errorf("place %d: min=%d, want 6", c.Place(), got[0])
			}
		})
	})
}

func TestReduceToRoot(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rt := newRT(t, 6)
		team := New(rt, core.WorldGroup(rt), mode)
		const root = 3
		runSPMD(t, rt, func(c *core.Ctx) {
			got := Reduce(team, c, root, []int{1}, func(a, b int) int { return a + b })
			if int(c.Place()) == root {
				if len(got) != 1 || got[0] != 6 {
					t.Errorf("root got %v, want [6]", got)
				}
			} else if got != nil {
				t.Errorf("non-root place %d got %v, want nil", c.Place(), got)
			}
		})
	})
}

func TestBroadcast(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rt := newRT(t, 9)
		team := New(rt, core.WorldGroup(rt), mode)
		const root = 2
		runSPMD(t, rt, func(c *core.Ctx) {
			var in []string
			if int(c.Place()) == root {
				in = []string{"hello", "world"}
			}
			got := Broadcast(team, c, root, in)
			if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
				t.Errorf("place %d got %v", c.Place(), got)
			}
		})
	})
}

func TestAllGather(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n = 5
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			got := AllGather(team, c, []int{int(c.Place()) * 2})
			if len(got) != n {
				t.Fatalf("got %d parts", len(got))
			}
			for r := 0; r < n; r++ {
				if len(got[r]) != 1 || got[r][0] != r*2 {
					t.Errorf("place %d: part[%d]=%v", c.Place(), r, got[r])
				}
			}
		})
	})
}

func TestAllToAll(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const n = 4
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			me := int(c.Place())
			send := make([][]int, n)
			for j := 0; j < n; j++ {
				send[j] = []int{me*100 + j}
			}
			got := AllToAll(team, c, send)
			// got[i] must be what member i sent to me: i*100 + me.
			for i := 0; i < n; i++ {
				if len(got[i]) != 1 || got[i][0] != i*100+me {
					t.Errorf("place %d: got[%d]=%v, want [%d]", me, i, got[i], i*100+me)
				}
			}
		})
	})
}

func TestAllReduceMaxLoc(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rt := newRT(t, 6)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			// Place 4 holds the maximum.
			v := float64(c.Place())
			if c.Place() == 4 {
				v = 100
			}
			got := AllReduceMaxLoc(team, c, v, int(c.Place())*7)
			if got.Value != 100 || got.Rank != 4 || got.Index != 28 {
				t.Errorf("place %d: maxloc = %+v", c.Place(), got)
			}
		})
	})
}

func TestSubTeam(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rt := newRT(t, 8)
		g, err := core.NewPlaceGroup([]core.Place{1, 3, 5, 7})
		if err != nil {
			t.Fatal(err)
		}
		team := New(rt, g, mode)
		if team.Size() != 4 {
			t.Fatalf("Size = %d", team.Size())
		}
		rerr := rt.Run(func(ctx *core.Ctx) {
			if err := ctx.Finish(func(c *core.Ctx) {
				for _, p := range g.Places() {
					c.AtAsync(p, func(cc *core.Ctx) {
						got := AllReduce(team, cc, []int{1}, func(a, b int) int { return a + b })
						if got[0] != 4 {
							t.Errorf("place %d: got %d, want 4", cc.Place(), got[0])
						}
					})
				}
			}); err != nil {
				t.Errorf("finish: %v", err)
			}
		})
		if rerr != nil {
			t.Fatalf("Run: %v", rerr)
		}
	})
}

func TestNonMemberPanics(t *testing.T) {
	rt := newRT(t, 4)
	g, _ := core.NewPlaceGroup([]core.Place{1, 2})
	team := New(rt, g, ModeNative)
	err := rt.Run(func(ctx *core.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("non-member Barrier did not panic")
			}
		}()
		team.Barrier(ctx) // place 0 is not a member
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Back-to-back collectives must not cross-contaminate sequences.
	bothModes(t, func(t *testing.T, mode Mode) {
		const n = 4
		rt := newRT(t, n)
		team := New(rt, core.WorldGroup(rt), mode)
		runSPMD(t, rt, func(c *core.Ctx) {
			for round := 1; round <= 20; round++ {
				got := AllReduce(team, c, []int{round}, func(a, b int) int { return a + b })
				if got[0] != round*n {
					t.Errorf("round %d: got %d, want %d", round, got[0], round*n)
					return
				}
			}
		})
	})
}

func TestSingleMemberTeam(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rt := newRT(t, 1)
		team := New(rt, core.WorldGroup(rt), mode)
		err := rt.Run(func(ctx *core.Ctx) {
			team.Barrier(ctx)
			got := AllReduce(team, ctx, []int{9}, func(a, b int) int { return a + b })
			if got[0] != 9 {
				t.Errorf("got %v", got)
			}
			g2 := Broadcast(team, ctx, 0, []int{3})
			if g2[0] != 3 {
				t.Errorf("bcast got %v", g2)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
}

// TestBarrierActuallyBlocks verifies a straggler holds everyone.
func TestBarrierActuallyBlocks(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rt := newRT(t, 3)
		team := New(rt, core.WorldGroup(rt), mode)
		var after atomic.Int64
		runSPMD(t, rt, func(c *core.Ctx) {
			if c.Place() == 2 {
				time.Sleep(50 * time.Millisecond)
				if n := after.Load(); n != 0 {
					t.Errorf("%d members passed the barrier before the straggler entered", n)
				}
			}
			team.Barrier(c)
			after.Add(1)
		})
		if after.Load() != 3 {
			t.Errorf("after = %d", after.Load())
		}
	})
}

func TestModeString(t *testing.T) {
	if ModeNative.String() != "native" || ModeEmulated.String() != "emulated" {
		t.Error("mode names wrong")
	}
	if fmt.Sprint(ModeNative) != "native" {
		t.Error("Stringer not wired")
	}
}
