package harness

import (
	"fmt"
	"time"

	"apgas/internal/apps/uts"
	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
	"apgas/internal/x10rt"
)

// This file holds the ablation experiments for the design choices the
// paper calls out: the specialized finish implementations of §3.1, the
// scalable broadcast of §3.2, collectives modes of §3.3, and the UTS
// load-balancer refinements of §6.1.

// FinishAblation measures, for one workload shape, the wall time and
// control-message traffic of the applicable finish patterns. The three
// shapes mirror §3.1's catalogue:
//
//	"spmd"  — one remote activity per place (FINISH_SPMD's home turf)
//	"round" — request/response round trips (FINISH_HERE vs FINISH_ASYNC)
//	"dense" — an all-to-all spawn storm (FINISH_DENSE's home turf)
type FinishAblationRow struct {
	Pattern     string
	Seconds     float64
	CtlMessages uint64
	CtlBytes    uint64
	// HomeFanIn is the number of distinct places that sent control
	// traffic directly to the finish home — the "flooded network
	// interface" §3.1 warns about; FINISH_DENSE's software routing
	// exists to keep it low.
	HomeFanIn int
	// MaxInDegree is the largest control fan-in at any single place.
	MaxInDegree int
}

// FinishAblation runs the named workload under each candidate pattern.
func FinishAblation(shape string, places, reps int) ([]FinishAblationRow, error) {
	type cand struct {
		name string
		pat  core.Pattern
	}
	var candidates []cand
	switch shape {
	case "spmd":
		candidates = []cand{
			{"FINISH_DEFAULT", core.PatternDefault},
			{"FINISH_SPMD", core.PatternSPMD},
		}
	case "round":
		candidates = []cand{
			{"FINISH_DEFAULT", core.PatternDefault},
			{"FINISH_ASYNC", core.PatternAsync},
			{"FINISH_HERE", core.PatternHere},
		}
	case "dense":
		candidates = []cand{
			{"FINISH_DEFAULT", core.PatternDefault},
			{"FINISH_DENSE", core.PatternDense},
		}
	default:
		return nil, fmt.Errorf("harness: unknown finish shape %q", shape)
	}

	var rows []FinishAblationRow
	for _, c := range candidates {
		inner, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: places})
		if err != nil {
			return nil, err
		}
		counting := x10rt.NewCountingTransport(inner)
		rt, err := core.NewRuntime(core.Config{
			Places: places, PlacesPerHost: 8, Transport: counting,
		})
		if err != nil {
			return nil, err
		}
		before := rt.Transport().Stats()
		start := time.Now()
		err = rt.Run(func(ctx *core.Ctx) {
			for rep := 0; rep < reps; rep++ {
				var ferr error
				switch shape {
				case "spmd":
					ferr = ctx.FinishPragma(c.pat, func(cc *core.Ctx) {
						for _, p := range cc.Places() {
							cc.AtAsync(p, func(*core.Ctx) {})
						}
					})
				case "round":
					home := ctx.Place()
					target := core.Place(rep%(places-1) + 1)
					ferr = ctx.FinishPragma(c.pat, func(cc *core.Ctx) {
						cc.AtAsync(target, func(cr *core.Ctx) {
							if c.pat == core.PatternHere || c.pat == core.PatternDefault {
								cr.AtAsync(home, func(*core.Ctx) {})
							}
						})
					})
				case "dense":
					ferr = ctx.FinishPragma(c.pat, func(cc *core.Ctx) {
						for _, p := range cc.Places() {
							cc.AtAsync(p, func(cp *core.Ctx) {
								for _, q := range cp.Places() {
									cp.AtAsync(q, func(*core.Ctx) {})
								}
							})
						}
					})
				}
				if ferr != nil {
					panic(ferr)
				}
			}
		})
		seconds := time.Since(start).Seconds()
		delta := rt.Transport().Stats().Sub(before)
		rt.Close()
		if err != nil {
			return nil, err
		}
		fanIn, _ := counting.FanIn(0, x10rt.ControlClass)
		rows = append(rows, FinishAblationRow{
			Pattern:     c.name,
			Seconds:     seconds,
			CtlMessages: delta.Messages[x10rt.ControlClass],
			CtlBytes:    delta.Bytes[x10rt.ControlClass],
			HomeFanIn:   fanIn,
			MaxInDegree: counting.MaxInDegree(x10rt.ControlClass),
		})
	}
	return rows, nil
}

// FinishAblationTable formats the three shapes into one table.
func FinishAblationTable(places, reps int) (Table, error) {
	t := Table{
		Title:   fmt.Sprintf("Finish pattern ablation (%d places, %d reps)", places, reps),
		Columns: []string{"seconds", "ctl msgs", "ctl bytes", "home fan-in", "max fan-in"},
	}
	for _, shape := range []string{"spmd", "round", "dense"} {
		rows, err := FinishAblation(shape, places, reps)
		if err != nil {
			return t, err
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, Row{
				Name: fmt.Sprintf("%s/%s", shape, r.Pattern),
				Values: []string{
					fmt.Sprintf("%.4f", r.Seconds),
					fmt.Sprintf("%d", r.CtlMessages),
					fmt.Sprintf("%d", r.CtlBytes),
					fmt.Sprintf("%d", r.HomeFanIn),
					fmt.Sprintf("%d", r.MaxInDegree),
				},
			})
		}
	}
	return t, nil
}

// BroadcastAblation compares the §3.2 spawning-tree PlaceGroup broadcast
// against the naive sequential place loop.
func BroadcastAblation(places, reps int) (Table, error) {
	t := Table{
		Title:   fmt.Sprintf("Broadcast ablation (%d places, %d reps)", places, reps),
		Columns: []string{"seconds", "ctl msgs"},
	}
	for _, tree := range []bool{true, false} {
		rt, err := core.NewRuntime(core.Config{Places: places, PlacesPerHost: 8, BroadcastArity: 4})
		if err != nil {
			return t, err
		}
		g := core.WorldGroup(rt)
		before := rt.Transport().Stats()
		start := time.Now()
		err = rt.Run(func(ctx *core.Ctx) {
			for rep := 0; rep < reps; rep++ {
				var berr error
				if tree {
					berr = g.Broadcast(ctx, func(*core.Ctx) {})
				} else {
					berr = g.SequentialBroadcast(ctx, func(*core.Ctx) {})
				}
				if berr != nil {
					panic(berr)
				}
			}
		})
		seconds := time.Since(start).Seconds()
		delta := rt.Transport().Stats().Sub(before)
		rt.Close()
		if err != nil {
			return t, err
		}
		name := "tree (nested FINISH_SPMD)"
		if !tree {
			name = "sequential loop"
		}
		t.Rows = append(t.Rows, Row{
			Name: name,
			Values: []string{
				fmt.Sprintf("%.4f", seconds),
				fmt.Sprintf("%d", delta.Messages[x10rt.ControlClass]),
			},
		})
	}
	return t, nil
}

// UTSAblation reproduces §6.2's comparison: the refined balancer (interval
// bags, fragment-of-every-interval stealing, bounded victim sets,
// FINISH_DENSE root) against the original PPoPP'11 configuration (expanded
// node lists, unbounded victims, default finish). The paper observed the
// original "slows to a crawl" beyond a few thousand cores; at this scale
// the visible signal is the control-traffic and steal-efficiency gap.
func UTSAblation(places, depth int) (Table, error) {
	tree := sha1rng.Geometric{B0: 4, Depth: depth, Seed: 19}
	want, _ := tree.CountSequential()
	t := Table{
		Title:   fmt.Sprintf("UTS balancer ablation (%d places, depth %d, %d nodes)", places, depth, want),
		Columns: []string{"Mnodes/s", "ctl msgs", "steals ok/try", "lifeline sends"},
	}
	type variant struct {
		name string
		cfg  uts.Config
	}
	variants := []variant{
		{"refined (intervals+bounded+dense)", uts.Config{
			Tree: tree,
			GLB:  glb.Config{DenseFinish: true},
		}},
		{"legacy [35] (lists+unbounded+default)", uts.Config{
			Tree:       tree,
			UseListBag: true,
			GLB:        glb.Config{MaxVictims: -1},
		}},
	}
	for _, v := range variants {
		rt, err := core.NewRuntime(core.Config{Places: places, PlacesPerHost: 8})
		if err != nil {
			return t, err
		}
		before := rt.Transport().Stats()
		res, err := uts.Run(rt, v.cfg)
		delta := rt.Transport().Stats().Sub(before)
		rt.Close()
		if err != nil {
			return t, err
		}
		if res.Nodes != want {
			return t, fmt.Errorf("uts ablation %q: %d nodes, want %d", v.name, res.Nodes, want)
		}
		t.Rows = append(t.Rows, Row{
			Name: v.name,
			Values: []string{
				fmt.Sprintf("%.3f", res.NodesPerSecond()/1e6),
				fmt.Sprintf("%d", delta.Messages[x10rt.ControlClass]),
				fmt.Sprintf("%d/%d", res.Stats.StealSuccesses, res.Stats.StealAttempts),
				fmt.Sprintf("%d", res.Stats.LifelineRequests),
			},
		})
	}
	return t, nil
}

// allReduceResult is the measurement of kmeansLikeAllReduce.
type allReduceResult struct {
	opsPerSec        float64
	mbPerSecPerPlace float64
}

// kmeansLikeAllReduce times repeated vector all-reduces (the K-Means
// communication pattern) under the given team mode.
func kmeansLikeAllReduce(rt *core.Runtime, mode collectives.Mode, words, reps int) (allReduceResult, error) {
	team := collectives.New(rt, core.WorldGroup(rt), mode)
	start := time.Now()
	err := rt.Run(func(ctx *core.Ctx) {
		ferr := ctx.FinishPragma(core.PatternSPMD, func(cs *core.Ctx) {
			for _, p := range cs.Places() {
				cs.AtAsync(p, func(cc *core.Ctx) {
					buf := make([]float64, words)
					for i := range buf {
						buf[i] = float64(cc.Place()) + float64(i)
					}
					for rep := 0; rep < reps; rep++ {
						collectives.AllReduce(team, cc, buf, func(a, b float64) float64 { return a + b })
					}
				})
			}
		})
		if ferr != nil {
			panic(ferr)
		}
	})
	seconds := time.Since(start).Seconds()
	if err != nil {
		return allReduceResult{}, err
	}
	ops := float64(reps)
	return allReduceResult{
		opsPerSec:        ops / seconds,
		mbPerSecPerPlace: ops * float64(8*words) / seconds / 1e6,
	}, nil
}
