package harness

import (
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/x10rt"
)

// TestWireLedgerDisabledOverhead is the wire-observatory acceptance
// gate, asserted by `make bench-smoke`: with no ledger attached, the
// cost-attribution hooks on the message hot paths must cost less than
// 2% of the cheapest message. Like the tracing gate above it, raw
// before/after timing of whole benchmarks is too noisy for CI, so the
// budget is enforced two ways that stay stable on a loaded machine:
//
//  1. The disabled fast paths allocate nothing. Every transport calls
//     the record methods on a possibly-nil *WireLedger; the nil
//     receiver must return before touching timers or maps
//     (testing.AllocsPerRun is exact, not a timing measurement).
//  2. The per-message hook cost — the RecordSend + RecordWire +
//     RecordRecv triple a chan-transport message pays, measured
//     directly on the nil receiver — must be under 2% of the measured
//     cost of the cheapest message, a FINISH_ASYNC remote spawn plus
//     its completion credit. The measured ratio is far below 0.1%
//     (three nil checks against a multi-microsecond message), so the
//     2% gate holds with wide margin.
func TestWireLedgerDisabledOverhead(t *testing.T) {
	// (1) Allocation-free disabled paths, covering every record method a
	// transport hot path calls.
	var nilLg *x10rt.WireLedger
	checks := []struct {
		name string
		fn   func()
	}{
		{"nil RecordSend", func() { nilLg.RecordSend(0, 1, x10rt.UserHandlerBase, 64) }},
		{"nil RecordWire", func() { nilLg.RecordWire(0, 1, 80) }},
		{"nil RecordEncode", func() { nilLg.RecordEncode(0, x10rt.UserHandlerBase, 500) }},
		{"nil RecordRecv", func() { nilLg.RecordRecv(1, x10rt.UserHandlerBase, 400) }},
		{"nil RecordBatchBody", func() { nilLg.RecordBatchBody(0, 1, 256, 128) }},
		{"nil RecordQueueWait", func() { nilLg.RecordQueueWait(0, 1, 1000) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(1000, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f objects/op on the disabled fast path, want 0", c.name, n)
		}
	}

	// (2) Hook cost vs message cost. A chan-transport message pays one
	// RecordSend and one RecordWire at the sender plus one RecordRecv at
	// delivery.
	const hookIters = 1_000_000
	start := time.Now()
	for i := 0; i < hookIters; i++ {
		nilLg.RecordSend(0, 1, x10rt.UserHandlerBase, 64)
		nilLg.RecordWire(0, 1, 64)
		nilLg.RecordRecv(1, x10rt.UserHandlerBase, 0)
	}
	hookNs := float64(time.Since(start).Nanoseconds()) / hookIters

	// The reference runtime runs with the ledger disabled — the exact
	// configuration whose overhead the gate bounds.
	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	const finishes = 3000 // 2 messages each: spawn + completion credit
	var msgNs float64
	err = rt.Run(func(ctx *core.Ctx) {
		t0 := time.Now()
		for i := 0; i < finishes; i++ {
			if ferr := ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
				c.AtAsync(1, func(*core.Ctx) {})
			}); ferr != nil {
				t.Error(ferr)
				return
			}
		}
		msgNs = float64(time.Since(t0).Nanoseconds()) / (2 * finishes)
	})
	if err != nil {
		t.Fatal(err)
	}

	ratio := hookNs / msgNs
	t.Logf("disabled hook triple %.1f ns, FINISH_ASYNC message %.0f ns: overhead %.3f%%",
		hookNs, msgNs, 100*ratio)
	if ratio >= 0.02 {
		t.Errorf("disabled-ledger hook overhead %.2f%% of message cost, want < 2%%", 100*ratio)
	}
}
