package harness

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"

	"apgas/internal/collectives"
)

func TestAllFig1PanelsTiny(t *testing.T) {
	type gen func(Scale) (Series, error)
	for _, g := range []struct {
		name string
		fn   gen
	}{
		{"hpl", Fig1HPL},
		{"fft", Fig1FFT},
		{"ra", Fig1RandomAccess},
		{"stream", Fig1Stream},
		{"uts", Fig1UTS},
		{"kmeans", Fig1KMeans},
		{"sw", Fig1SW},
		{"bc", Fig1BC},
	} {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			s, err := g.fn(Tiny)
			if err != nil {
				t.Fatalf("%s: %v", g.name, err)
			}
			if len(s.Points) == 0 {
				t.Fatalf("%s: no points", g.name)
			}
			for _, p := range s.Points {
				if p.Aggregate <= 0 || p.PerUnit <= 0 {
					t.Errorf("%s places=%d: non-positive metrics %+v", g.name, p.Places, p)
				}
			}
			var buf bytes.Buffer
			s.Print(&buf)
			if !strings.Contains(buf.String(), s.Name) {
				t.Errorf("%s: Print missing name", g.name)
			}
		})
	}
}

func TestTablesTiny(t *testing.T) {
	t1, err := Table1(Tiny)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(t1.Rows) != 4 {
		t.Fatalf("Table1 has %d rows", len(t1.Rows))
	}
	t2, err := Table2(Tiny)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(t2.Rows) != 8 {
		t.Fatalf("Table2 has %d rows", len(t2.Rows))
	}
	var buf bytes.Buffer
	t1.Print(&buf)
	t2.Print(&buf)
	if !strings.Contains(buf.String(), "Global HPL") {
		t.Error("tables missing HPL row")
	}
}

func TestModelTable(t *testing.T) {
	mt := ModelTable()
	if len(mt.Rows) == 0 {
		t.Fatal("empty model table")
	}
	var buf bytes.Buffer
	mt.Print(&buf)
	if !strings.Contains(buf.String(), "1740 hosts") {
		t.Error("model table missing full-machine row")
	}
}

func TestFinishAblationShapes(t *testing.T) {
	for _, shape := range []string{"spmd", "round", "dense"} {
		rows, err := FinishAblation(shape, 4, 3)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s: %d rows", shape, len(rows))
		}
	}
	if _, err := FinishAblation("bogus", 4, 1); err == nil {
		t.Error("bogus shape accepted")
	}
}

// TestFinishAblationSpecializedUseFewerMessages asserts the §3.1 claim at
// this scale: the specialized patterns use no more control messages than
// the general algorithm, and FINISH_HERE's round trips use none at all.
func TestFinishAblationSpecializedUseFewerMessages(t *testing.T) {
	rows, err := FinishAblation("round", 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FinishAblationRow{}
	for _, r := range rows {
		byName[r.Pattern] = r
	}
	if byName["FINISH_HERE"].CtlMessages != 0 {
		t.Errorf("FINISH_HERE used %d control messages, want 0", byName["FINISH_HERE"].CtlMessages)
	}
	if byName["FINISH_HERE"].CtlMessages > byName["FINISH_DEFAULT"].CtlMessages {
		t.Error("FINISH_HERE used more control traffic than the default")
	}
	srows, err := FinishAblation("spmd", 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	byName = map[string]FinishAblationRow{}
	for _, r := range srows {
		byName[r.Pattern] = r
	}
	if byName["FINISH_SPMD"].CtlMessages > byName["FINISH_DEFAULT"].CtlMessages {
		t.Errorf("FINISH_SPMD msgs %d > default %d",
			byName["FINISH_SPMD"].CtlMessages, byName["FINISH_DEFAULT"].CtlMessages)
	}
}

func TestFinishAblationTable(t *testing.T) {
	tab, err := FinishAblationTable(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 { // 2 + 3 + 2
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
}

func TestBroadcastAblation(t *testing.T) {
	tab, err := BroadcastAblation(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestUTSAblation(t *testing.T) {
	tab, err := UTSAblation(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTeamModeSeries(t *testing.T) {
	for _, mode := range []collectives.Mode{collectives.ModeNative, collectives.ModeEmulated} {
		s, err := TeamModeSeries(Tiny, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(s.Points) == 0 {
			t.Fatalf("%v: no points", mode)
		}
	}
}

func TestSequentialReference(t *testing.T) {
	tab := SequentialReference()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestSeriesEfficiency(t *testing.T) {
	ideal := func(p int) float64 {
		c := runtime.GOMAXPROCS(0)
		if p < c {
			return float64(p)
		}
		return float64(c)
	}
	s := Series{Points: []Point{
		{Places: 1, Aggregate: 10},
		{Places: 4, Aggregate: 36},
		{Places: 16, Aggregate: 128},
	}}
	want := (128.0 / 10.0) / (ideal(16) / ideal(1))
	if e := s.Efficiency(1); math.Abs(e-want) > 1e-12 {
		t.Errorf("Efficiency(1) = %v, want %v", e, want)
	}
	want4 := (128.0 / 36.0) / (ideal(16) / ideal(4))
	if e := s.Efficiency(4); math.Abs(e-want4) > 1e-12 {
		t.Errorf("Efficiency(4) = %v, want %v", e, want4)
	}
	if (Series{}).Efficiency(1) != 0 {
		t.Error("empty series efficiency")
	}

	// Time-based series: rate = places/seconds.
	ts := Series{TimeBased: true, Points: []Point{
		{Places: 1, Aggregate: 2.0},  // rate 0.5
		{Places: 8, Aggregate: 20.0}, // rate 0.4
	}}
	wantT := (0.4 / 0.5) / (ideal(8) / ideal(1))
	if e := ts.Efficiency(1); math.Abs(e-wantT) > 1e-12 {
		t.Errorf("time-based Efficiency = %v, want %v", e, wantT)
	}
}

func TestScaleSweeps(t *testing.T) {
	if len(Tiny.PlaceSweep()) >= len(Small.PlaceSweep()) {
		t.Error("Tiny sweep not smaller than Small")
	}
	if len(Small.PlaceSweep()) >= len(Medium.PlaceSweep()) {
		t.Error("Small sweep not smaller than Medium")
	}
}
