package harness

import (
	"context"
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/obs"
)

// nilProf lives at package scope so the compiler cannot prove it nil
// and fold the disabled-path branches away.
var nilProf *obs.Profiler

var profSink bool

// TestProfilingDisabledOverhead is the activity-profiling acceptance
// gate, asserted by `make bench-smoke`, built like the tracing gate
// (TestTracingDisabledOverhead): raw before/after wall-clock deltas are
// too noisy for CI, so the <2% budget is enforced through properties
// that stay stable on a loaded machine.
//
//  1. The disabled hooks allocate nothing. The runtime's call sites
//     build the pprof label closure only inside the `pr != nil` branch,
//     so with profiling off an activity costs one pointer load and
//     branch — no closure, no LabelSet, no context.
//  2. Allocation parity: a remote finish cycle allocates exactly the
//     same with a profiling-capable-but-disabled observability layer as
//     with no observability at all.
//  3. The per-activity hook cost on the disabled path, measured
//     directly, must be under 2% of the cheapest message the profiler
//     wraps (a FINISH_ASYNC remote spawn plus its completion credit).
func TestProfilingDisabledOverhead(t *testing.T) {
	// (1) Allocation-free disabled hooks. The fn closures are prebuilt:
	// at the real call sites they exist only on the enabled branch.
	errFn := func(context.Context) error { return nil }
	voidFn := func(context.Context) {}
	checks := []struct {
		name string
		fn   func()
	}{
		{"nil Enabled", func() { profSink = nilProf.Enabled() }},
		{"nil Run", func() { _ = nilProf.Run(0, "default", "async", errFn) }},
		{"nil Do", func() { nilProf.Do(0, "none", "uncounted", voidFn) }},
		{"nil RunPattern", func() { _ = nilProf.RunPattern(nil, "dense", errFn) }},
		{"nil DoKind", func() { nilProf.DoKind(nil, "collective.allreduce", voidFn) }},
		{"nil SetApp", func() { nilProf.SetApp("x") }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(1000, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f objects/op on the disabled path, want 0", c.name, n)
		}
	}

	// (2) Alloc parity: the same remote finish cycle, with and without a
	// (profiling-disabled) observability layer attached.
	cycleAllocs := func(o *obs.Obs) float64 {
		rt, err := core.NewRuntime(core.Config{Places: 2, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		var res float64
		err = rt.Run(func(ctx *core.Ctx) {
			// Warm up lazily-created state before counting.
			for i := 0; i < 50; i++ {
				_ = ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
					c.AtAsync(1, func(*core.Ctx) {})
				})
			}
			res = testing.AllocsPerRun(500, func() {
				_ = ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
					c.AtAsync(1, func(*core.Ctx) {})
				})
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := cycleAllocs(nil)
	withObs := cycleAllocs(obs.New()) // Prof stays nil: profiling off
	t.Logf("allocs per remote finish cycle: no obs %.2f, obs without profiling %.2f", bare, withObs)
	if diff := withObs - bare; diff > 0.05 || diff < -0.05 {
		t.Errorf("profiling-disabled runtime allocates %.2f/cycle vs %.2f bare — disabled path not allocation-identical",
			withObs, bare)
	}

	// (3) Hook cost vs message cost. An activity pays one profiler
	// branch at spawn-run and a finish body pays one more; measure the
	// pair.
	const hookIters = 1_000_000
	start := time.Now()
	for i := 0; i < hookIters; i++ {
		if pr := nilProf; pr != nil {
			t.Fatal("unreachable")
		}
		profSink = nilProf.Enabled()
	}
	hookNs := float64(time.Since(start).Nanoseconds()) / hookIters

	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	const finishes = 3000 // 2 messages each: spawn + completion credit
	var msgNs float64
	err = rt.Run(func(ctx *core.Ctx) {
		t0 := time.Now()
		for i := 0; i < finishes; i++ {
			if ferr := ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
				c.AtAsync(1, func(*core.Ctx) {})
			}); ferr != nil {
				t.Error(ferr)
				return
			}
		}
		msgNs = float64(time.Since(t0).Nanoseconds()) / (2 * finishes)
	})
	if err != nil {
		t.Fatal(err)
	}

	ratio := hookNs / msgNs
	t.Logf("disabled profiler hook pair %.2f ns, FINISH_ASYNC message %.0f ns: overhead %.3f%%",
		hookNs, msgNs, 100*ratio)
	if ratio >= 0.02 {
		t.Errorf("disabled-profiling hook overhead %.2f%% of message cost, want < 2%%", 100*ratio)
	}
}

// benchFinishCycle times one remote finish cycle (FINISH_ASYNC spawn at
// place 1 plus its completion credit) on a 2-place runtime built over o.
func benchFinishCycle(b *testing.B, o *obs.Obs) {
	rt, err := core.NewRuntime(core.Config{Places: 2, Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	err = rt.Run(func(ctx *core.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
				c.AtAsync(1, func(*core.Ctx) {})
			})
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFinishAsyncProfilingOff/On measure the label-propagation
// cost: Off is the zero-cost disabled path, On stamps the full pprof
// label set (place, pattern, kind, app) on every activity boundary the
// cycle crosses. The On/Off delta is the number EXPERIMENTS.md reports.
func BenchmarkFinishAsyncProfilingOff(b *testing.B) {
	benchFinishCycle(b, obs.New())
}

func BenchmarkFinishAsyncProfilingOn(b *testing.B) {
	benchFinishCycle(b, obs.New().EnableProfiling("bench"))
}
