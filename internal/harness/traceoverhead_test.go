package harness

import (
	"testing"
	"time"

	"apgas/internal/core"
	"apgas/internal/obs"
)

// TestTracingDisabledOverhead is the distributed-tracing acceptance
// gate, asserted by `make bench-smoke`: with tracing disabled, the
// span-propagation hooks on the message hot paths must cost less than
// 2% of the cheapest traced message. Raw before/after timing of the
// finish benchmarks is too noisy to gate in CI, so the budget is
// enforced two ways that stay stable on a loaded machine:
//
//  1. The disabled fast paths allocate nothing. Every hot call site
//     passes decorative Args; the variadic slice must stay on the
//     caller's stack when the tracer is nil or distributed tracing is
//     off (testing.AllocsPerRun is exact, not a timing measurement).
//  2. The per-message hook cost — one SendCtx plus one RecvCtx on the
//     disabled path, measured directly — must be under 2% of the
//     measured cost of the cheapest traced message, a FINISH_ASYNC
//     remote spawn plus its completion credit. The measured ratio is
//     ~0.1% (a few ns of nil checks against a multi-microsecond
//     message), so the 2% gate holds with wide margin.
func TestTracingDisabledOverhead(t *testing.T) {
	// (1) Allocation-free disabled paths, with Args like the real call
	// sites in sendDone, spawn, team send, and GLB steal.
	var nilTr *obs.Tracer
	offTr := obs.NewTracer() // attached but EnableDist never called
	checks := []struct {
		name string
		fn   func()
	}{
		{"nil-tracer SendCtx", func() {
			_ = nilTr.SendCtx("flow.ctl", "finish", 0, 0, obs.Arg{Key: "dst", Val: 1})
		}},
		{"dist-off SendCtx", func() {
			_ = offTr.SendCtx("flow.ctl", "finish", 0, 0, obs.Arg{Key: "dst", Val: 1})
		}},
		{"zero-context RecvCtx", func() {
			offTr.RecvCtx(obs.SpanContext{}, "flow.ctl", "finish", 0, 0, obs.Arg{Key: "src", Val: 1})
		}},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(1000, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f objects/op on the disabled fast path, want 0", c.name, n)
		}
	}

	// (2) Hook cost vs message cost. One message carries one SendCtx at
	// the sender and one RecvCtx at the receiver.
	const hookIters = 1_000_000
	start := time.Now()
	for i := 0; i < hookIters; i++ {
		ctx := offTr.SendCtx("flow.ctl", "finish", 0, 0, obs.Arg{Key: "dst", Val: 1})
		offTr.RecvCtx(ctx, "flow.ctl", "finish", 1, 0, obs.Arg{Key: "src", Val: 0})
	}
	hookNs := float64(time.Since(start).Nanoseconds()) / hookIters

	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	const finishes = 3000 // 2 messages each: spawn + completion credit
	var msgNs float64
	err = rt.Run(func(ctx *core.Ctx) {
		t0 := time.Now()
		for i := 0; i < finishes; i++ {
			if ferr := ctx.FinishPragma(core.PatternAsync, func(c *core.Ctx) {
				c.AtAsync(1, func(*core.Ctx) {})
			}); ferr != nil {
				t.Error(ferr)
				return
			}
		}
		msgNs = float64(time.Since(t0).Nanoseconds()) / (2 * finishes)
	})
	if err != nil {
		t.Fatal(err)
	}

	ratio := hookNs / msgNs
	t.Logf("disabled hook pair %.1f ns, FINISH_ASYNC message %.0f ns: overhead %.3f%%",
		hookNs, msgNs, 100*ratio)
	if ratio >= 0.02 {
		t.Errorf("disabled-tracing hook overhead %.2f%% of message cost, want < 2%%", 100*ratio)
	}
}
