package harness

import (
	"fmt"
	"strings"
	"testing"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// TestMetricsNoteMatchesTransportStats checks that the obs registry's
// x10rt.* deltas agree exactly with the transport's own Stats counters —
// the registry adopts the transport's live counters rather than keeping a
// second set, so any divergence means double counting.
func TestMetricsNoteMatchesTransportStats(t *testing.T) {
	o := obs.New()
	rt, err := core.NewRuntime(core.Config{Places: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	before := o.Metrics.Snapshot()
	statsBefore := rt.Transport().Stats()
	note := metricsNote(rt)

	err = rt.Run(func(c *core.Ctx) {
		g := core.WorldGroup(rt)
		if err := g.Broadcast(c, func(*core.Ctx) {}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	delta := o.Metrics.Snapshot().Sub(before)
	statsDelta := rt.Transport().Stats().Sub(statsBefore)

	var msgs, bytes uint64
	for i := 0; i < 3; i++ {
		cls := x10rt.Class(i).String()
		if got, want := delta.Counter("x10rt.msgs."+cls), statsDelta.Messages[i]; got != want {
			t.Errorf("x10rt.msgs.%s: registry delta %d, transport stats %d", cls, got, want)
		}
		if got, want := delta.Counter("x10rt.bytes."+cls), statsDelta.Bytes[i]; got != want {
			t.Errorf("x10rt.bytes.%s: registry delta %d, transport stats %d", cls, got, want)
		}
		msgs += statsDelta.Messages[i]
		bytes += statsDelta.Bytes[i]
	}
	if msgs == 0 {
		t.Fatal("broadcast over 4 places moved no messages; test is vacuous")
	}

	suffix := note()
	want := fmt.Sprintf("msgs=%d bytes=%d", msgs, bytes)
	if !strings.Contains(suffix, want) {
		t.Errorf("metricsNote suffix %q does not contain %q", suffix, want)
	}
	// The per-place registries also yield the activity-imbalance suffix.
	if !strings.Contains(suffix, "acts[min=") || !strings.Contains(suffix, "@p") {
		t.Errorf("metricsNote suffix %q missing per-place acts[min/max] breakdown", suffix)
	}
}

// TestMetricsNoteDisabled checks the suffix is empty without observability.
func TestMetricsNoteDisabled(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Places: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := metricsNote(rt)(); got != "" {
		t.Errorf("metricsNote on an unobserved runtime = %q, want empty", got)
	}
}
