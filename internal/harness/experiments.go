package harness

import (
	"fmt"
	"math"
	"time"

	"apgas/internal/apps/bc"
	"apgas/internal/apps/fftbench"
	"apgas/internal/apps/hpl"
	"apgas/internal/apps/kmeans"
	"apgas/internal/apps/randomaccess"
	"apgas/internal/apps/stream"
	"apgas/internal/apps/sw"
	"apgas/internal/apps/uts"
	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/rmat"
	"apgas/internal/kernels/sha1rng"
)

// newRuntime builds a runtime for an experiment run, with the telemetry
// plane attached when observability is on and the transport swapped for
// TransportFactory's (e.g. the batching wire path) when one is set.
func newRuntime(places int) (*core.Runtime, error) {
	cfg := core.Config{Places: places, PlacesPerHost: 8}
	if TransportFactory != nil {
		tr, err := TransportFactory(places)
		if err != nil {
			return nil, err
		}
		cfg.Transport = tr
		cfg.OwnTransport = true
	}
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	attachTelemetry(rt)
	return rt, nil
}

// Fig1HPL regenerates the Global HPL panel: weak scaling with constant
// per-place memory (N grows with sqrt(places)); the grid alternates
// between n x n and 2n x n for even and odd powers of two, reproducing
// the paper's seesaw.
func Fig1HPL(s Scale) (Series, error) {
	baseN := map[Scale]int{Tiny: 128, Small: 192, Medium: 256}[s]
	nb := map[Scale]int{Tiny: 16, Small: 32, Medium: 32}[s]
	out := Series{Name: "Global HPL", AggregateUnit: "Gflop/s", PerUnitUnit: "Gflop/s/core"}
	for _, places := range s.PlaceSweep() {
		n := baseN * int(math.Round(math.Sqrt(float64(places))))
		n = n / nb * nb
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := hpl.Run(rt, hpl.Config{N: n, NB: nb, Seed: 7})
		rt.Close()
		if err != nil {
			return out, err
		}
		if res.Residual > 16 {
			return out, fmt.Errorf("hpl places=%d: residual %g", places, res.Residual)
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: res.Gflops,
			PerUnit:   res.Gflops / float64(places),
			Note:      fmt.Sprintf("N=%d grid=%dx%d resid=%.2g", n, res.P, res.Q, res.Residual) + obsNote(),
		})
	}
	return out, nil
}

// Fig1FFT regenerates the Global FFT panel: weak scaling with N
// proportional to places.
func Fig1FFT(s Scale) (Series, error) {
	baseLog := map[Scale]int{Tiny: 12, Small: 14, Medium: 16}[s]
	out := Series{Name: "Global FFT", AggregateUnit: "Gflop/s", PerUnitUnit: "Gflop/s/core"}
	for _, places := range s.PlaceSweep() {
		log2n := baseLog + log2(places)
		if places > fftbench.MaxPlaces(log2n) {
			continue
		}
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := fftbench.Run(rt, fftbench.Config{Log2N: log2n, Seed: 5})
		rt.Close()
		if err != nil {
			return out, err
		}
		if res.MaxErr > 1e-6*float64(res.N) {
			return out, fmt.Errorf("fft places=%d: err %g", places, res.MaxErr)
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: res.Gflops,
			PerUnit:   res.Gflops / float64(places),
			Note:      fmt.Sprintf("N=2^%d err=%.2g", log2n, res.MaxErr) + obsNote(),
		})
	}
	return out, nil
}

// Fig1RandomAccess regenerates the Global RandomAccess panel: constant
// per-place table (weak scaling), GUP/s aggregate and per place.
func Fig1RandomAccess(s Scale) (Series, error) {
	logPer := map[Scale]int{Tiny: 12, Small: 14, Medium: 16}[s]
	out := Series{Name: "Global RandomAccess", AggregateUnit: "GUP/s", PerUnitUnit: "GUP/s/place"}
	for _, places := range s.PlaceSweep() {
		if places&(places-1) != 0 {
			continue
		}
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := randomaccess.Run(rt, randomaccess.Config{Log2TablePerPlace: logPer})
		rt.Close()
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: res.GUPs,
			PerUnit:   res.GUPs / float64(places),
			Note:      fmt.Sprintf("table=%d words", res.TableWords) + obsNote(),
		})
	}
	return out, nil
}

// Fig1Stream regenerates the EP Stream (Triad) panel: constant per-place
// vectors; aggregate and per-place GB/s.
func Fig1Stream(s Scale) (Series, error) {
	words := map[Scale]int{Tiny: 1 << 16, Small: 1 << 19, Medium: 1 << 21}[s]
	iters := map[Scale]int{Tiny: 4, Small: 8, Medium: 10}[s]
	out := Series{Name: "EP Stream (Triad)", AggregateUnit: "GB/s", PerUnitUnit: "GB/s/place"}
	for _, places := range s.PlaceSweep() {
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := stream.Run(rt, stream.Config{WordsPerPlace: words, Iterations: iters})
		rt.Close()
		if err != nil {
			return out, err
		}
		if res.VerifyErrors != 0 {
			return out, fmt.Errorf("stream places=%d: %d verify errors", places, res.VerifyErrors)
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: res.GBs,
			PerUnit:   res.GBsPerPlace,
			Note:      fmt.Sprintf("%d words/place", words) + obsNote(),
		})
	}
	return out, nil
}

// Fig1UTS regenerates the UTS panel: geometric trees (b0=4, r=19) deepened
// with the place count (weak scaling), traversed by the lifeline balancer
// under a FINISH_DENSE root finish.
func Fig1UTS(s Scale) (Series, error) {
	baseDepth := map[Scale]int{Tiny: 11, Small: 13, Medium: 14}[s]
	out := Series{Name: "UTS", AggregateUnit: "Mnodes/s", PerUnitUnit: "Mnodes/s/place"}
	for _, places := range s.PlaceSweep() {
		depth := baseDepth + int(math.Round(math.Log(float64(places))/math.Log(3)))
		tree := sha1rng.Geometric{B0: 4, Depth: depth, Seed: 19}
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := uts.Run(rt, uts.Config{
			Tree: tree,
			GLB:  glb.Config{DenseFinish: true},
		})
		rt.Close()
		if err != nil {
			return out, err
		}
		want, _ := tree.CountSequential()
		if res.Nodes != want {
			return out, fmt.Errorf("uts places=%d: %d nodes, want %d", places, res.Nodes, want)
		}
		rate := res.NodesPerSecond() / 1e6
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: rate,
			PerUnit:   rate / float64(places),
			Note:      fmt.Sprintf("depth=%d nodes=%d steals=%d", depth, res.Nodes, res.Stats.StealSuccesses) + obsNote(),
		})
	}
	return out, nil
}

// Fig1KMeans regenerates the K-Means panel: constant per-place points,
// time for the fixed iteration count, efficiency vs one place.
func Fig1KMeans(s Scale) (Series, error) {
	pts := map[Scale]int{Tiny: 2000, Small: 8000, Medium: 20000}[s]
	k := map[Scale]int{Tiny: 32, Small: 64, Medium: 128}[s]
	out := Series{Name: "K-Means", AggregateUnit: "seconds", PerUnitUnit: "work/s", TimeBased: true}
	for _, places := range s.PlaceSweep() {
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := kmeans.Run(rt, kmeans.Config{
			PointsPerPlace: pts, Clusters: k, Dim: 12, Iterations: 5, Seed: 3,
		})
		rt.Close()
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: res.Seconds,
			PerUnit:   float64(places) / res.Seconds,
			Note:      fmt.Sprintf("distortion=%.4f", res.Distortion) + obsNote(),
		})
	}
	return out, nil
}

// Fig1SW regenerates the Smith-Waterman panel: constant per-place target
// share, time and efficiency vs one place.
func Fig1SW(s Scale) (Series, error) {
	qlen := map[Scale]int{Tiny: 100, Small: 200, Medium: 400}[s]
	target := map[Scale]int{Tiny: 4000, Small: 10000, Medium: 20000}[s]
	out := Series{Name: "Smith-Waterman", AggregateUnit: "seconds", PerUnitUnit: "work/s", TimeBased: true}
	for _, places := range s.PlaceSweep() {
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := sw.Run(rt, sw.Config{
			QueryLen: qlen, TargetPerPlace: target, Iterations: 2, Seed: 13,
		})
		rt.Close()
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: res.Seconds,
			PerUnit:   float64(places) / res.Seconds,
			Note:      fmt.Sprintf("best=%d", res.BestScore) + obsNote(),
		})
	}
	return out, nil
}

// Fig1BC regenerates the Betweenness Centrality panel. Like the paper, the
// graph switches to a larger instance partway up the sweep, producing the
// mid-sweep performance drop; the efficiency is "corrected" by comparing
// like with like.
func Fig1BC(s Scale) (Series, error) {
	smallScale := map[Scale]int{Tiny: 8, Small: 10, Medium: 12}[s]
	sources := map[Scale]int{Tiny: 64, Small: 128, Medium: 256}[s]
	out := Series{Name: "Betweenness Centrality", AggregateUnit: "Medges/s", PerUnitUnit: "Medges/s/place"}
	sweep := s.PlaceSweep()
	for i, places := range sweep {
		scale := smallScale
		if i >= len(sweep)/2 {
			scale = smallScale + 2 // the paper's switch to the larger graph
		}
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := bc.Run(rt, bc.Config{
			Graph:    rmat.Params{Scale: scale, EdgeFactor: 8, Seed: 17},
			Sources:  sources,
			PermSeed: 23,
		})
		rt.Close()
		if err != nil {
			return out, err
		}
		rate := res.EdgesPerSecond / 1e6
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: rate,
			PerUnit:   rate / float64(places),
			Note:      fmt.Sprintf("2^%d vertices, %d edges", scale, res.Edges) + obsNote(),
		})
	}
	return out, nil
}

// TeamModeSeries compares native vs emulated collectives on an all-reduce
// microbenchmark — the §3.3 hardware-vs-emulation ablation.
func TeamModeSeries(s Scale, mode collectives.Mode) (Series, error) {
	words := map[Scale]int{Tiny: 1 << 10, Small: 1 << 12, Medium: 1 << 14}[s]
	reps := map[Scale]int{Tiny: 20, Small: 50, Medium: 100}[s]
	out := Series{
		Name:          fmt.Sprintf("Team AllReduce (%s)", mode),
		AggregateUnit: "ops/s", PerUnitUnit: "MB/s/place",
	}
	for _, places := range s.PlaceSweep() {
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		res, err := kmeansLikeAllReduce(rt, mode, words, reps)
		rt.Close()
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: res.opsPerSec,
			PerUnit:   res.mbPerSecPerPlace,
			Note:      fmt.Sprintf("%d f64/op", words) + obsNote(),
		})
	}
	return out, nil
}

// SPMDBroadcastSeries sweeps the §3.2 spawning-tree broadcast (nested
// FINISH_SPMD scopes, empty bodies) over the place sweep, timing a batch
// of broadcasts per point. The workload is nearly pure finish control —
// spawning-tree fan-out plus SPMD termination detection — which is what
// the performance observatory's critical-path profiler uses to pin a
// nonzero finish-control bucket.
func SPMDBroadcastSeries(s Scale) (Series, error) {
	reps := map[Scale]int{Tiny: 30, Small: 60, Medium: 100}[s]
	out := Series{Name: "SPMD Broadcast", AggregateUnit: "bcast/s", PerUnitUnit: "us/bcast"}
	for _, places := range s.PlaceSweep() {
		rt, err := newRuntime(places)
		if err != nil {
			return out, err
		}
		obsNote := metricsNote(rt)
		g := core.WorldGroup(rt)
		start := time.Now()
		err = rt.Run(func(ctx *core.Ctx) {
			for rep := 0; rep < reps; rep++ {
				if berr := g.Broadcast(ctx, func(*core.Ctx) {}); berr != nil {
					panic(berr)
				}
			}
		})
		seconds := time.Since(start).Seconds()
		rt.Close()
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: float64(reps) / seconds,
			PerUnit:   seconds / float64(reps) * 1e6,
			Note:      fmt.Sprintf("%d reps", reps) + obsNote(),
		})
	}
	return out, nil
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
