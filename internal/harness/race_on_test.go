//go:build race

package harness

// raceEnabled reports whether the race detector is active; the
// one-sided bandwidth gate compares the instrumented runtime put path
// against an uninstrumented-shape memcpy loop, a ratio the detector's
// per-access overhead skews asymmetrically.
const raceEnabled = true
