package harness

import (
	"fmt"
	"strings"

	"apgas/internal/core"
	"apgas/internal/obs"
	"apgas/internal/telemetry"
)

// metricsNote snapshots the runtime's metrics registry and returns a
// function rendering the deltas accumulated since as a Note suffix for a
// table Point. With observability disabled (no registry attached to the
// runtime) both the snapshot and the rendered suffix are empty, so
// experiment tables look exactly as before.
//
// When the runtime carries per-place registries the suffix also reports
// the activity imbalance across places — the min and max per-place
// spawn deltas with the places holding them — the per-run view of what
// the telemetry plane aggregates cluster-wide.
//
// Call it right after building the runtime — the runtime's constructor is
// what (re-)registers the transport and scheduler counters, so a snapshot
// taken earlier would not cover them.
func metricsNote(rt *core.Runtime) func() string {
	reg := rt.Obs().Registry()
	if reg == nil {
		return func() string { return "" }
	}
	before := reg.Snapshot()
	places := rt.NumPlaces()
	perBefore := make(map[int]obs.Snapshot, places)
	for p := 0; p < places; p++ {
		perBefore[p] = rt.Obs().Place(p).Snapshot()
	}
	return func() string {
		delta := reg.Snapshot().Sub(before)
		var msgs, bytes, spawned uint64
		for name, v := range delta {
			switch {
			case strings.HasPrefix(name, "x10rt.msgs."):
				msgs += v.Count
			case strings.HasPrefix(name, "x10rt.bytes.") && name != "x10rt.bytes.wire":
				// Modeled payload bytes only: the wire counter measures
				// the same traffic after batching/compression and would
				// double-count it here.
				bytes += v.Count
			case strings.HasPrefix(name, "sched.") && strings.HasSuffix(name, ".spawned"):
				spawned += v.Count
			}
		}
		note := fmt.Sprintf(" | msgs=%d bytes=%d acts=%d", msgs, bytes, spawned)
		if places > 1 {
			perDelta := make(map[int]obs.Snapshot, places)
			for p := 0; p < places; p++ {
				perDelta[p] = rt.Obs().Place(p).Snapshot().Sub(perBefore[p])
			}
			merged := obs.MergeSnapshots(perDelta)
			if mv, ok := merged["sched.spawned"]; ok && len(mv.Places) == places {
				note += fmt.Sprintf(" acts[min=%d@p%d max=%d@p%d]", mv.Min, mv.MinAt, mv.Max, mv.MaxAt)
			}
		}
		return note
	}
}

// attachTelemetry wires the telemetry plane to a freshly built runtime so
// every harness run can be inspected cross-place (the /telemetry debug
// endpoint and -metrics-all views use the same plane). It is best-effort:
// a runtime without observability simply runs without a plane.
func attachTelemetry(rt *core.Runtime) {
	if rt.Obs() == nil {
		return
	}
	if p, err := telemetry.Attach(rt); err == nil {
		telemetry.SetCurrent(p)
	}
}
