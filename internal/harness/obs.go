package harness

import (
	"fmt"
	"strings"

	"apgas/internal/core"
)

// metricsNote snapshots the runtime's metrics registry and returns a
// function rendering the deltas accumulated since as a Note suffix for a
// table Point. With observability disabled (no registry attached to the
// runtime) both the snapshot and the rendered suffix are empty, so
// experiment tables look exactly as before.
//
// Call it right after building the runtime — the runtime's constructor is
// what (re-)registers the transport and scheduler counters, so a snapshot
// taken earlier would not cover them.
func metricsNote(rt *core.Runtime) func() string {
	reg := rt.Obs().Registry()
	if reg == nil {
		return func() string { return "" }
	}
	before := reg.Snapshot()
	return func() string {
		delta := reg.Snapshot().Sub(before)
		var msgs, bytes, spawned uint64
		for name, v := range delta {
			switch {
			case strings.HasPrefix(name, "x10rt.msgs."):
				msgs += v.Count
			case strings.HasPrefix(name, "x10rt.bytes."):
				bytes += v.Count
			case strings.HasPrefix(name, "sched.") && strings.HasSuffix(name, ".spawned"):
				spawned += v.Count
			}
		}
		return fmt.Sprintf(" | msgs=%d bytes=%d acts=%d", msgs, bytes, spawned)
	}
}
