package harness

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"apgas/internal/obs"
	"apgas/internal/x10rt"
)

// TransportFactory, when non-nil, supplies the transport for every
// experiment-series runtime the harness builds. apgas-bench sets it
// from -batch / -batch-delay / -compress-min so the panel suite can be
// rerun over the batching wire path; nil keeps the default
// ChanTransport. The ablation tables are exempt: they count messages
// through their own counting transports and must not be perturbed. The
// runtime takes ownership of the returned transport and closes it with
// the runtime.
var TransportFactory func(places int) (x10rt.Transport, error)

// CodecWire, when true, switches the transport panels' TCP meshes from
// gob framing to the binary wire codec (v4 frames with a per-connection
// type-table handshake). apgas-bench sets it from -codec so the wire
// panels can be rerun over the codec path; the dedicated codec series
// (TransportCodecSeries) always uses the codec regardless.
var CodecWire bool

// transportPayload is the small-control-frame stand-in for the wire
// microbenchmarks: the size class of a finish credit or a steal
// request, the traffic §3.3's aggregation discipline exists for.
type transportPayload struct {
	Seq int32
	Arg int32
}

func init() {
	x10rt.RegisterWireType(transportPayload{})
	x10rt.RegisterWireType([]byte(nil))
	// Hand-written binary codec for the microbenchmark payload: two
	// little-endian uint32s, no reflection. This is the shape the codec
	// speedup gate measures, so it takes the fast path a production
	// control frame would.
	x10rt.RegisterWireCodec(transportPayload{}, &x10rt.WireCodec{
		Name: "harness:transportPayload",
		Encode: func(dst []byte, v any) ([]byte, error) {
			p := v.(transportPayload)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Seq))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Arg))
			return dst, nil
		},
		Decode: func(data []byte) (any, error) {
			if len(data) != 8 {
				return nil, fmt.Errorf("transportPayload: %d bytes, want 8", len(data))
			}
			return transportPayload{
				Seq: int32(binary.LittleEndian.Uint32(data)),
				Arg: int32(binary.LittleEndian.Uint32(data[4:])),
			}, nil
		},
	})
}

// transportHandler is where the microbenchmarks register, clear of the
// runtime's reserved range and of transporttest's slot.
const transportHandler = x10rt.UserHandlerBase + 200

// smallFrameBytes is the modeled size of one small control frame.
const smallFrameBytes = 24

// largeFrameBytes is the payload size of the bulk-data microbenchmark.
const largeFrameBytes = 1 << 20

// transportRun is one measured mesh run.
type transportRun struct {
	seconds float64
	msgs    int
	bytes   int
	batches uint64 // batches forwarded by the wrappers (0 unbatched)
	wire    uint64 // on-the-wire bytes, summed over endpoint egress
}

// transportMesh builds a local TCP mesh — a real serializing wire, not
// the in-process chan fast path — optionally with codec framing (v4
// frames) and optionally wrapping every endpoint in a batching layer.
func transportMesh(places int, batch, codec bool, compressMin int) ([]x10rt.Transport, func(), error) {
	var mesh []*x10rt.TCPTransport
	var err error
	if codec {
		mesh, err = x10rt.NewLocalCodecTCPMesh(places)
	} else {
		mesh, err = x10rt.NewLocalTCPMesh(places)
	}
	if err != nil {
		return nil, nil, err
	}
	eps := make([]x10rt.Transport, places)
	if !batch {
		for p, tr := range mesh {
			eps[p] = tr
		}
		return eps, func() {
			for _, tr := range mesh {
				tr.Close()
			}
		}, nil
	}
	wrapped := make([]*x10rt.BatchingTransport, places)
	for p, tr := range mesh {
		wrapped[p] = x10rt.NewBatchingTransport(tr, x10rt.BatchOptions{CompressMin: compressMin})
		eps[p] = wrapped[p]
	}
	return eps, func() {
		for _, tr := range wrapped {
			tr.Close() // closes the TCP endpoint underneath
		}
	}, nil
}

// runTransportMesh drives one mesh: every place sends perPlace messages
// of msgBytes each (round-robin over the other places), and the run is
// timed from first send to last delivery. Endpoint 0's metrics attach
// to the process-global registry so -bench-json artifacts carry the
// x10rt.batch.* counters and histograms of a representative endpoint.
// lg, when non-nil, is attached to every endpoint so the run's traffic
// is cost-attributed (the wire observatory series).
func runTransportMesh(places, perPlace int, batch, codec bool, compressMin, msgBytes int, lg *x10rt.WireLedger, payload func(seq int) any) (transportRun, error) {
	eps, closeAll, err := transportMesh(places, batch, codec, compressMin)
	if err != nil {
		return transportRun{}, err
	}
	defer closeAll()
	var got atomic.Int64
	for _, ep := range eps {
		if err := ep.Register(transportHandler, func(src, dst int, payload any) { got.Add(1) }); err != nil {
			return transportRun{}, err
		}
		if lg != nil {
			if ls, ok := ep.(x10rt.LedgerSink); ok {
				ls.AttachWireLedger(lg)
			}
		}
	}
	if o := obs.Global(); o != nil {
		if ms, ok := eps[0].(x10rt.MetricSource); ok {
			ms.AttachMetrics(o.Metrics)
		}
	}

	total := int64(places * perPlace)
	sendErr := make(chan error, places)
	start := time.Now()
	var wg sync.WaitGroup
	for src := 0; src < places; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perPlace; i++ {
				dst := (src + 1 + i%(places-1)) % places
				if err := eps[src].Send(src, dst, transportHandler, payload(i), msgBytes, x10rt.ControlClass); err != nil {
					sendErr <- fmt.Errorf("send %d->%d: %w", src, dst, err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	select {
	case err := <-sendErr:
		return transportRun{}, err
	default:
	}
	for _, ep := range eps {
		if f, ok := ep.(x10rt.Flusher); ok {
			_ = f.Flush(-1)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for got.Load() < total {
		if time.Now().After(deadline) {
			return transportRun{}, fmt.Errorf("transport places=%d: %d/%d delivered after 30s", places, got.Load(), total)
		}
		time.Sleep(50 * time.Microsecond)
	}
	run := transportRun{
		seconds: time.Since(start).Seconds(),
		msgs:    int(total),
		bytes:   int(total) * msgBytes,
	}
	for _, ep := range eps {
		if bt, ok := ep.(*x10rt.BatchingTransport); ok {
			b, _ := bt.BatchStats()
			run.batches += b
		}
		run.wire += ep.Stats().WireBytes
	}
	return run, nil
}

// runSmallFrames is the small-control-frame microbenchmark: the ≥3x
// batching target of the wire-path overhaul — and, with codec framing,
// the ≥3x codec-over-gob target — is measured on this shape.
func runSmallFrames(places, perPlace int, batch, codec bool, compressMin int) (transportRun, error) {
	return runTransportMesh(places, perPlace, batch, codec, compressMin, smallFrameBytes, nil,
		func(seq int) any { return transportPayload{Seq: int32(seq), Arg: int32(seq * 3)} })
}

// runLargeFrames is the bulk-data microbenchmark: 1 MiB payloads, where
// batching must stay out of the way rather than win.
func runLargeFrames(places, perPlace int, batch, codec bool, compressMin int) (transportRun, error) {
	buf := make([]byte, largeFrameBytes)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return runTransportMesh(places, perPlace, batch, codec, compressMin, largeFrameBytes, nil,
		func(seq int) any { return buf })
}

// transportSmallSeries sweeps the small-frame microbenchmark over the
// scale's place counts (from 2: one place has no wire).
func transportSmallSeries(name string, batch, codec bool) func(Scale) (Series, error) {
	return func(s Scale) (Series, error) {
		perPlace := map[Scale]int{Tiny: 3000, Small: 6000, Medium: 10000}[s]
		out := Series{Name: name, AggregateUnit: "msg/s", PerUnitUnit: "msg/s/place"}
		for _, places := range s.PlaceSweep() {
			if places < 2 {
				continue
			}
			run, err := runSmallFrames(places, perPlace, batch, codec, 0)
			if err != nil {
				return out, err
			}
			rate := float64(run.msgs) / run.seconds
			note := fmt.Sprintf("%d msgs, wire=%dB", run.msgs, run.wire)
			if batch {
				note += fmt.Sprintf(", %d batches", run.batches)
			}
			out.Points = append(out.Points, Point{
				Places:    places,
				Aggregate: rate,
				PerUnit:   rate / float64(places),
				Note:      note,
			})
		}
		return out, nil
	}
}

// TransportSmallSeries measures the unbatched wire path on small
// control frames over a real local TCP mesh: one gob-framed write per
// message, the pre-overhaul baseline the batching series is gated
// against.
func TransportSmallSeries(s Scale) (Series, error) {
	return transportSmallSeries("Transport small frames", false, CodecWire)(s)
}

// TransportSmallBatchSeries is the same microbenchmark through the
// batching wire path: per-link coalescing into shared-stream batch
// frames. The committed BENCH artifacts must show it ≥3x the unbatched
// series (see TestTransportBatchSpeedup, asserted by `make
// bench-smoke`).
func TransportSmallBatchSeries(s Scale) (Series, error) {
	return transportSmallSeries("Transport small frames (batched)", true, CodecWire)(s)
}

// TransportCodecSeries is the batched microbenchmark over codec
// framing: v4 frames whose payloads travel as raw little-endian bytes
// after the per-connection type-table handshake, no gob on the hot
// path. The committed BENCH artifacts must show it ≥3x the gob batched
// series (see TestCodecSpeedup, asserted by `make bench-smoke`).
func TransportCodecSeries(s Scale) (Series, error) {
	return transportSmallSeries("Transport small frames (codec)", true, true)(s)
}

// WireSeries is the wire observatory microbenchmark: small control
// frames through the batched TCP wire with a WireLedger attached, so
// every message's gob encode/decode cost is attributed. The aggregate
// is encode ns per message and the per-unit column decode ns per
// message — serialization cost, so lower is better (TimeBased), and
// benchdiff flags a codec regression as such. The series also enforces
// the ledger's sum-equality against the transport counters: a point
// where the attributed bytes disagree with the wire fails the run.
func WireSeries(s Scale) (Series, error) {
	perPlace := map[Scale]int{Tiny: 2000, Small: 4000, Medium: 8000}[s]
	out := Series{
		Name:          "Wire ledger serialization cost",
		AggregateUnit: "enc-ns/msg",
		PerUnitUnit:   "dec-ns/msg",
		TimeBased:     true,
	}
	for _, places := range s.PlaceSweep() {
		if places < 2 {
			continue
		}
		lg := x10rt.NewWireLedger(places, nil)
		run, err := runTransportMesh(places, perPlace, true, false, 0, smallFrameBytes, lg,
			func(seq int) any { return transportPayload{Seq: int32(seq), Arg: int32(seq * 3)} })
		if err != nil {
			return out, err
		}
		snap := lg.Snapshot()
		if got, want := snap.TotalPayloadBytes(), uint64(run.bytes); got != want {
			return out, fmt.Errorf("wire places=%d: ledger payload bytes %d != sent bytes %d", places, got, want)
		}
		if got, want := snap.TotalWireBytes(), run.wire; got != want {
			return out, fmt.Errorf("wire places=%d: ledger wire bytes %d != transport wire bytes %d", places, got, want)
		}
		var msgs, recv, encNs, decNs uint64
		for _, h := range snap.Handlers {
			msgs += h.Msgs
			recv += h.RecvMsgs
			encNs += h.EncNs
			decNs += h.DecNs
		}
		if msgs != uint64(run.msgs) || recv != uint64(run.msgs) {
			return out, fmt.Errorf("wire places=%d: ledger msgs=%d recv=%d, want %d", places, msgs, recv, run.msgs)
		}
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: float64(encNs) / float64(msgs),
			PerUnit:   float64(decNs) / float64(recv),
			Note:      fmt.Sprintf("%d msgs, wire=%dB, %d batches, sums OK", run.msgs, run.wire, run.batches),
		})
	}
	return out, nil
}

// TransportLargeBatchSeries pushes 1 MiB payloads through the batching
// wire path: bulk data takes the idle/size fast paths, so throughput
// must track the unbatched wire. MB/s aggregate over all links.
func TransportLargeBatchSeries(s Scale) (Series, error) {
	perPlace := map[Scale]int{Tiny: 24, Small: 32, Medium: 48}[s]
	out := Series{Name: "Transport 1MiB frames (batched)", AggregateUnit: "MB/s", PerUnitUnit: "MB/s/place"}
	for _, places := range s.PlaceSweep() {
		if places < 2 {
			continue
		}
		run, err := runLargeFrames(places, perPlace, true, CodecWire, 0)
		if err != nil {
			return out, err
		}
		rate := float64(run.bytes) / (1 << 20) / run.seconds
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: rate,
			PerUnit:   rate / float64(places),
			Note:      fmt.Sprintf("%d MiB, %d batches", run.bytes>>20, run.batches),
		})
	}
	return out, nil
}
