package harness

import (
	"fmt"

	"apgas/internal/baseline"
	"apgas/internal/kernels/sha1rng"
	"apgas/internal/netsim"
)

// Table1 regenerates the paper's Table 1: the APGAS implementations of the
// four HPC Challenge benchmarks against the "Class 1" analogues — direct
// implementations that bypass the runtime (package baseline). The paper
// measured 85% (HPL), 81% (RandomAccess), 41% (FFT), and 87% (Stream); the
// reproduced ratios reflect this substrate's runtime overheads instead of
// the Torrent's, but answer the same question: how much of the bare-metal
// rate does the productivity layer keep?
func Table1(s Scale) (Table, error) {
	t := Table{
		Title:   "Table 1: APGAS implementation vs Class 1 analogue",
		Columns: []string{"APGAS", "Class 1", "ratio"},
	}
	// The paper compares the per-core rate of each implementation with
	// both running on the same hardware. The matched configuration here
	// is the single-place APGAS run (one core, full runtime stack)
	// against a sequential direct implementation of the *same problem
	// size*: the ratio isolates the runtime's overhead tax.

	// HPL.
	hplSeries, err := Fig1HPL(s)
	if err != nil {
		return t, err
	}
	hplOne := hplSeries.Points[0]
	baseN := map[Scale]int{Tiny: 128, Small: 192, Medium: 256}[s]
	nb := map[Scale]int{Tiny: 16, Small: 32, Medium: 32}[s]
	hplBase := baseline.LU(baseN, nb, 7)
	t.Rows = append(t.Rows, ratioRow("Global HPL (Gflop/s/core)", hplOne.PerUnit, hplBase))

	// RandomAccess.
	raSeries, err := Fig1RandomAccess(s)
	if err != nil {
		return t, err
	}
	raOne := raSeries.Points[0]
	logPer := map[Scale]int{Tiny: 12, Small: 14, Medium: 16}[s]
	raBase := baseline.GUPS(logPer, 4, 1)
	t.Rows = append(t.Rows, ratioRow("Global RandomAccess (GUP/s)", raOne.Aggregate, raBase))

	// FFT.
	fftSeries, err := Fig1FFT(s)
	if err != nil {
		return t, err
	}
	fftOne := fftSeries.Points[0]
	baseLog := map[Scale]int{Tiny: 12, Small: 14, Medium: 16}[s]
	fftBase := baseline.FFT(baseLog, 5)
	t.Rows = append(t.Rows, ratioRow("Global FFT (Gflop/s/core)", fftOne.PerUnit, fftBase))

	// Stream.
	stSeries, err := Fig1Stream(s)
	if err != nil {
		return t, err
	}
	stOne := stSeries.Points[0]
	words := map[Scale]int{Tiny: 1 << 16, Small: 1 << 19, Medium: 1 << 21}[s]
	iters := map[Scale]int{Tiny: 4, Small: 8, Medium: 10}[s]
	stBase := baseline.StreamTriad(words, iters, 1)
	t.Rows = append(t.Rows, ratioRow("EP Stream (GB/s/place)", stOne.PerUnit, stBase))
	return t, nil
}

func ratioRow(name string, apgas, base float64) Row {
	ratio := 0.0
	if base > 0 {
		ratio = apgas / base
	}
	return Row{Name: name, Values: []string{fmtG(apgas), fmtG(base), fmtPct(ratio)}}
}

// Table2 regenerates the paper's Table 2: relative efficiency at scale —
// the per-unit metric at the largest run divided by the single-place (or
// reference) value, for the same implementation. The paper's values:
// HPL 87%, RandomAccess 100%, FFT 100%, Stream 98%, UTS 98%, K-Means 98%,
// Smith-Waterman 98%, BC 45% (77% corrected).
func Table2(s Scale) (Table, error) {
	t := Table{
		Title:   "Table 2: relative efficiency at scale vs reference",
		Columns: []string{"ref/unit", "at scale/unit", "eff vs 1", "eff vs host"},
	}
	add := func(name string, series Series, err error) error {
		if err != nil {
			return err
		}
		first := series.Points[0]
		last := series.Points[len(series.Points)-1]
		// The paper's Table 2 normalizes against one *host*, not one
		// core, "as the memory bandwidth does not scale linearly due to
		// bus contention" — the analogous reference here is the sweep
		// midpoint, where the shared memory system is already saturated.
		host := series.Points[len(series.Points)/2].Places
		t.Rows = append(t.Rows, Row{
			Name: name,
			Values: []string{
				fmtG(first.PerUnit), fmtG(last.PerUnit),
				fmtPct(series.Efficiency(1)),
				fmtPct(series.Efficiency(host)),
			},
		})
		return nil
	}
	type gen func(Scale) (Series, error)
	for _, g := range []struct {
		name string
		fn   gen
	}{
		{"Global HPL (Gflop/s/core)", Fig1HPL},
		{"Global RandomAccess (GUP/s/place)", Fig1RandomAccess},
		{"Global FFT (Gflop/s/core)", Fig1FFT},
		{"EP Stream (GB/s/place)", Fig1Stream},
		{"UTS (Mnodes/s/place)", Fig1UTS},
		{"K-Means (efficiency)", Fig1KMeans},
		{"Smith-Waterman (efficiency)", Fig1SW},
		{"Betweenness Centrality (Medges/s/place)", Fig1BC},
	} {
		series, err := g.fn(s)
		if aerr := add(g.name, series, err); aerr != nil {
			return t, aerr
		}
	}
	return t, nil
}

// ModelTable prints the netsim Power 775 predictions for the
// interconnect-bound kernels at paper scale — the §4 bandwidth analysis
// that explains the RandomAccess and FFT curve shapes (per-host dip
// between one supernode and many).
func ModelTable() Table {
	m := netsim.Power775()
	t := Table{
		Title:   "Power 775 interconnect model (netsim): per-host rates vs hosts",
		Columns: []string{"all-to-all GB/s/host", "RA GUP/s/host", "FFT Gflop/s/core"},
	}
	gp := netsim.DefaultGUPSParams()
	fp := netsim.DefaultFFTParams()
	for _, hosts := range []int{1, 8, 32, 64, 128, 256, 512, 1024, 1740} {
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("%d hosts", hosts),
			Values: []string{
				fmtG(m.AllToAllPerOctant(hosts)),
				fmtG(m.RandomAccessGupsPerHost(hosts, gp)),
				fmtG(m.FFTGflopsPerCore(hosts, fp)),
			},
		})
	}
	return t
}

// SequentialReference reports single-core sanity rates used in
// EXPERIMENTS.md (UTS nodes/s as the headline, matching the paper's
// 10.9 Mnodes/s/core on Power7).
func SequentialReference() Table {
	t := Table{
		Title:   "Sequential reference rates (this machine)",
		Columns: []string{"value"},
	}
	rate, nodes := baseline.UTS(sha1rng.Geometric{B0: 4, Depth: 13, Seed: 19})
	t.Rows = append(t.Rows, Row{
		Name:   "UTS sequential (Mnodes/s)",
		Values: []string{fmt.Sprintf("%.2f (%d nodes)", rate, nodes)},
	})
	t.Rows = append(t.Rows, Row{
		Name:   "FFT sequential 2^16 (Gflop/s)",
		Values: []string{fmtG(baseline.FFT(16, 5))},
	})
	t.Rows = append(t.Rows, Row{
		Name:   "LU sequential 256 (Gflop/s)",
		Values: []string{fmtG(baseline.LU(256, 32, 7))},
	})
	return t
}
