package harness

import "testing"

// TestTransportBatchSpeedup is the wire-path overhaul's acceptance
// gate, asserted by `make bench-smoke`: on the small-control-frame
// microbenchmark over a real local TCP mesh, the batching transport
// must deliver at least 3x the unbatched message rate. Measured
// headroom is ~10x (shared-stream gob encoding amortizes type
// descriptors; one write per batch), so 3x holds even on a loaded
// machine; best-of-2 guards against scheduler noise.
func TestTransportBatchSpeedup(t *testing.T) {
	const places, perPlace = 2, 4000
	best := func(batch bool) float64 {
		rate := 0.0
		for rep := 0; rep < 2; rep++ {
			run, err := runSmallFrames(places, perPlace, batch, false, 0)
			if err != nil {
				t.Fatalf("batch=%v: %v", batch, err)
			}
			if r := float64(run.msgs) / run.seconds; r > rate {
				rate = r
			}
		}
		return rate
	}
	unbatched := best(false)
	batched := best(true)
	ratio := batched / unbatched
	t.Logf("small frames: unbatched %.0f msg/s, batched %.0f msg/s (%.1fx)",
		unbatched, batched, ratio)
	if ratio < 3 {
		t.Errorf("batching speedup %.2fx < 3x (unbatched %.0f msg/s, batched %.0f msg/s)",
			ratio, unbatched, batched)
	}
}

// TestCodecSpeedup is the zero-copy wire codec's acceptance gate,
// asserted by `make bench-smoke`: on the batched small-control-frame
// microbenchmark over a real local TCP mesh, codec framing (v4, raw
// little-endian payloads after the type-table handshake) must deliver
// at least 3x the gob batch frame message rate. The payload has a
// hand-written codec, so the per-message cost is two fixed-width loads
// against gob's reflective stream; best-of-2 guards against scheduler
// noise on a loaded (or 1 vCPU) machine.
func TestCodecSpeedup(t *testing.T) {
	const places, perPlace = 2, 4000
	best := func(codec bool) float64 {
		rate := 0.0
		for rep := 0; rep < 2; rep++ {
			run, err := runSmallFrames(places, perPlace, true, codec, 0)
			if err != nil {
				t.Fatalf("codec=%v: %v", codec, err)
			}
			if r := float64(run.msgs) / run.seconds; r > rate {
				rate = r
			}
		}
		return rate
	}
	gobRate := best(false)
	codecRate := best(true)
	ratio := codecRate / gobRate
	t.Logf("batched small frames: gob %.0f msg/s, codec %.0f msg/s (%.1fx)",
		gobRate, codecRate, ratio)
	if ratio < 3 {
		t.Errorf("codec speedup %.2fx < 3x (gob %.0f msg/s, codec %.0f msg/s)",
			ratio, gobRate, codecRate)
	}
}

// TestOneSidedBandwidth is the one-sided lane's acceptance gate,
// asserted by `make bench-smoke`: a 1 MiB AsyncCopyPut on a 2-place
// chan runtime must move bytes at ≥50% of this machine's memcpy
// bandwidth. The op's data lands directly in the target fragment's raw
// window — one copy, like memcpy — so the margin is the whole v5
// dispatch and finish-credit overhead, amortized over 1 MiB.
func TestOneSidedBandwidth(t *testing.T) {
	if raceEnabled {
		t.Skip("bandwidth-vs-memcpy ratio is skewed by race instrumentation " +
			"(the runtime path pays per-access checks the memcpy loop mostly doesn't)")
	}
	memcpy := memcpyBandwidth(3)
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		rate, err := runOneSidedPut(2, 8)
		if err != nil {
			t.Fatal(err)
		}
		if rate > best {
			best = rate
		}
	}
	frac := best / memcpy
	t.Logf("one-sided 1MiB put: %.0f MB/s, memcpy %.0f MB/s (%.0f%%)",
		best/(1<<20), memcpy/(1<<20), frac*100)
	if frac < 0.5 {
		t.Errorf("one-sided put bandwidth %.0f MB/s is %.0f%% of memcpy (%.0f MB/s), want ≥50%%",
			best/(1<<20), frac*100, memcpy/(1<<20))
	}
}

// TestTransportSeriesShapes smoke-runs each transport series at tiny
// scale and checks the sweep shape: points from 2 places up, nonzero
// rates, batches counted only on the batching series.
func TestTransportSeriesShapes(t *testing.T) {
	small, err := TransportSmallSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := TransportSmallBatchSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := TransportCodecSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	large, err := TransportLargeBatchSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	onesided, err := OneSidedSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Series{small, batched, codec, large, onesided} {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no points", s.Name)
		}
		for _, p := range s.Points {
			if p.Places < 2 {
				t.Errorf("%s: point at %d places; wire series start at 2", s.Name, p.Places)
			}
			if p.Aggregate <= 0 {
				t.Errorf("%s places=%d: nonpositive rate %g", s.Name, p.Places, p.Aggregate)
			}
		}
	}
}
