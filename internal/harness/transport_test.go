package harness

import "testing"

// TestTransportBatchSpeedup is the wire-path overhaul's acceptance
// gate, asserted by `make bench-smoke`: on the small-control-frame
// microbenchmark over a real local TCP mesh, the batching transport
// must deliver at least 3x the unbatched message rate. Measured
// headroom is ~10x (shared-stream gob encoding amortizes type
// descriptors; one write per batch), so 3x holds even on a loaded
// machine; best-of-2 guards against scheduler noise.
func TestTransportBatchSpeedup(t *testing.T) {
	const places, perPlace = 2, 4000
	best := func(batch bool) float64 {
		rate := 0.0
		for rep := 0; rep < 2; rep++ {
			run, err := runSmallFrames(places, perPlace, batch, 0)
			if err != nil {
				t.Fatalf("batch=%v: %v", batch, err)
			}
			if r := float64(run.msgs) / run.seconds; r > rate {
				rate = r
			}
		}
		return rate
	}
	unbatched := best(false)
	batched := best(true)
	ratio := batched / unbatched
	t.Logf("small frames: unbatched %.0f msg/s, batched %.0f msg/s (%.1fx)",
		unbatched, batched, ratio)
	if ratio < 3 {
		t.Errorf("batching speedup %.2fx < 3x (unbatched %.0f msg/s, batched %.0f msg/s)",
			ratio, unbatched, batched)
	}
}

// TestTransportSeriesShapes smoke-runs each transport series at tiny
// scale and checks the sweep shape: points from 2 places up, nonzero
// rates, batches counted only on the batching series.
func TestTransportSeriesShapes(t *testing.T) {
	small, err := TransportSmallSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := TransportSmallBatchSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	large, err := TransportLargeBatchSeries(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Series{small, batched, large} {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no points", s.Name)
		}
		for _, p := range s.Points {
			if p.Places < 2 {
				t.Errorf("%s: point at %d places; wire series start at 2", s.Name, p.Places)
			}
			if p.Aggregate <= 0 {
				t.Errorf("%s places=%d: nonpositive rate %g", s.Name, p.Places, p.Aggregate)
			}
		}
	}
}
