package harness

import (
	"runtime"
	"strings"
	"testing"
)

func TestEfficiencyCheckedEmptySeries(t *testing.T) {
	s := Series{Name: "empty"}
	if _, err := s.EfficiencyChecked(1); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("err = %v, want empty-series error", err)
	}
	if got := s.Efficiency(1); got != 0 {
		t.Fatalf("Efficiency = %v, want 0", got)
	}
}

func TestEfficiencyCheckedSinglePoint(t *testing.T) {
	s := Series{Name: "one", Points: []Point{{Places: 1, Aggregate: 10}}}
	if _, err := s.EfficiencyChecked(1); err == nil || !strings.Contains(err.Error(), "single point") {
		t.Fatalf("err = %v, want single-point error", err)
	}
	if got := s.Efficiency(1); got != 0 {
		t.Fatalf("Efficiency = %v, want 0", got)
	}
}

func TestEfficiencyCheckedZeroBaselineThroughput(t *testing.T) {
	s := Series{Name: "zeroref", Points: []Point{
		{Places: 1, Aggregate: 0},
		{Places: 4, Aggregate: 30},
	}}
	if _, err := s.EfficiencyChecked(1); err == nil || !strings.Contains(err.Error(), "zero throughput") {
		t.Fatalf("err = %v, want zero-throughput error", err)
	}
	if got := s.Efficiency(1); got != 0 {
		t.Fatalf("Efficiency = %v, want 0", got)
	}
}

func TestEfficiencyCheckedZeroTimeBased(t *testing.T) {
	s := Series{Name: "zerotime", TimeBased: true, Points: []Point{
		{Places: 1, Aggregate: 0},
		{Places: 4, Aggregate: 2},
	}}
	if _, err := s.EfficiencyChecked(1); err == nil || !strings.Contains(err.Error(), "zero time") {
		t.Fatalf("err = %v, want zero-time error", err)
	}
}

func TestEfficiencyCheckedHappyPath(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 procs for a 2x ideal speedup")
	}
	s := Series{Name: "ok", Points: []Point{
		{Places: 1, Aggregate: 10},
		{Places: 2, Aggregate: 20},
	}}
	eff, err := s.EfficiencyChecked(1)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect scaling over a 2x sweep on a multi-core host: efficiency 1.
	if eff < 0.99 || eff > 1.01 {
		t.Fatalf("eff = %v, want ~1", eff)
	}
	if got := s.Efficiency(1); got != eff {
		t.Fatalf("Efficiency %v != EfficiencyChecked %v", got, eff)
	}
}
