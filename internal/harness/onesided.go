package harness

import (
	"fmt"
	"time"

	"apgas/internal/congruent"
	"apgas/internal/core"
)

// oneSidedPutBytes is the payload size of the one-sided bandwidth
// microbenchmark: 1 MiB, the bulk-transfer shape AsyncCopyPut's
// zero-copy []byte lane exists for.
const oneSidedPutBytes = 1 << 20

// oneSidedPipeline is how many puts ride each measured finish: like any
// RDMA bandwidth test the ops are pipelined, so the per-finish setup
// cost amortizes and the steady-state rate is the lane's, not the
// finish protocol's.
const oneSidedPipeline = 8

// runOneSidedPut drives reps rounds of 1 MiB AsyncCopyPut from place 0
// to every other place, oneSidedPipeline ops deep, each round under its
// own finish (so the measured rate includes the v5 lane's finish-credit
// accounting), and returns the aggregate put bandwidth in bytes per
// second.
func runOneSidedPut(places, reps int) (bytesPerSec float64, err error) {
	rt, err := newRuntime(places)
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	if !rt.OneSidedEnabled() {
		return 0, fmt.Errorf("onesided places=%d: runtime has no one-sided lane", places)
	}
	alloc := congruent.NewAllocator(rt)
	arr, err := congruent.NewArray[byte](alloc, oneSidedPutBytes)
	if err != nil {
		return 0, err
	}
	src := make([]byte, oneSidedPutBytes)
	for i := range src {
		src[i] = byte(i * 131)
	}
	var seconds float64
	rerr := rt.Run(func(ctx *core.Ctx) {
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			if ferr := ctx.Finish(func(c *core.Ctx) {
				for i := 0; i < oneSidedPipeline; i++ {
					for p := 1; p < places; p++ {
						congruent.AsyncCopyPut(c, src, arr, core.Place(p), 0)
					}
				}
			}); ferr != nil {
				panic(ferr)
			}
		}
		seconds = time.Since(start).Seconds()
		// The landing is part of the contract: spot-check one fragment.
		for p := 1; p < places; p++ {
			frag := arr.Fragment(core.Place(p))
			for _, i := range []int{0, oneSidedPutBytes / 2, oneSidedPutBytes - 1} {
				if frag[i] != src[i] {
					panic(fmt.Sprintf("place %d: frag[%d] = %d, want %d", p, i, frag[i], src[i]))
				}
			}
		}
	})
	if rerr != nil {
		return 0, rerr
	}
	return float64(reps*oneSidedPipeline*(places-1)*oneSidedPutBytes) / seconds, nil
}

// memcpyBandwidth measures this machine's plain copy() bandwidth on the
// same 1 MiB shape, best of reps — the ceiling the one-sided lane is
// gated against.
func memcpyBandwidth(reps int) float64 {
	src := make([]byte, oneSidedPutBytes)
	dst := make([]byte, oneSidedPutBytes)
	for i := range src {
		src[i] = byte(i * 17)
	}
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		const copies = 64
		start := time.Now()
		for c := 0; c < copies; c++ {
			copy(dst, src)
		}
		if r := float64(copies*oneSidedPutBytes) / time.Since(start).Seconds(); r > best {
			best = r
		}
	}
	if dst[0] != src[0] {
		panic("memcpy baseline: copy went nowhere")
	}
	return best
}

// OneSidedSeries sweeps the one-sided put bandwidth over the scale's
// place counts: 1 MiB AsyncCopyPut frames landing directly in the
// target fragment through the v5 lane, MB/s aggregate and per
// destination place. The note carries the machine's memcpy ceiling so
// the committed artifact shows how close the lane runs to memory
// bandwidth (TestOneSidedBandwidth gates the 2-place point at ≥50%).
func OneSidedSeries(s Scale) (Series, error) {
	reps := map[Scale]int{Tiny: 4, Small: 8, Medium: 12}[s]
	memcpy := memcpyBandwidth(3) / (1 << 20)
	out := Series{Name: "One-sided 1MiB put", AggregateUnit: "MB/s", PerUnitUnit: "MB/s/place"}
	for _, places := range s.PlaceSweep() {
		if places < 2 {
			continue
		}
		rate, err := runOneSidedPut(places, reps)
		if err != nil {
			return out, err
		}
		mbs := rate / (1 << 20)
		out.Points = append(out.Points, Point{
			Places:    places,
			Aggregate: mbs,
			PerUnit:   mbs / float64(places-1),
			Note:      fmt.Sprintf("%d reps, memcpy ceiling %.0f MB/s", reps, memcpy),
		})
	}
	return out, nil
}
