// Package harness drives the paper's experiments: the eight weak-scaling
// panels of Figure 1, the Class 1 comparison of Table 1, the relative
// efficiency summary of Table 2, and the ablation studies behind §3
// (finish patterns, scalable broadcast, collectives modes) and §6 (the UTS
// load balancer refinements). Each experiment produces a Series or Table
// that the cmd/apgas-bench tool prints and the repository's benchmarks
// regenerate.
//
// Absolute numbers are whatever this machine delivers; what reproduces the
// paper is the shape: who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records the paper-vs-measured values.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
)

// Point is one measurement of a weak-scaling sweep.
type Point struct {
	// Places is the place count of the run.
	Places int
	// Aggregate is the whole-run metric (Gflop/s, nodes/s, GB/s, ...).
	Aggregate float64
	// PerUnit is the per-core/per-place metric plotted on Figure 1's
	// secondary axes.
	PerUnit float64
	// Note carries run-specific detail (problem size, residual, ...).
	Note string
}

// Series is one panel of Figure 1: a metric swept over place counts.
type Series struct {
	Name          string
	AggregateUnit string
	PerUnitUnit   string
	// TimeBased marks series whose Aggregate is a run time (K-Means,
	// Smith-Waterman) rather than a throughput; efficiency then compares
	// work/time instead of the raw aggregate.
	TimeBased bool
	Points    []Point
}

// Efficiency returns the relative efficiency of the largest run against
// the reference run (the first point at or above refPlaces) — Table 2's
// metric — normalized by the parallelism actually available: on the
// paper's machine every place had its own core, so ideal weak scaling
// multiplies throughput by the place ratio; on this substrate places share
// GOMAXPROCS cores, so the ideal speedup saturates at the core count. An
// efficiency near 1 means the runtime added no overhead beyond the
// hardware's limits as places grew.
func (s Series) Efficiency(refPlaces int) float64 {
	eff, err := s.EfficiencyChecked(refPlaces)
	if err != nil {
		return 0
	}
	return eff
}

// EfficiencyChecked is Efficiency with the degenerate cases made
// explicit: an empty series, a single-point series (no scaling to
// measure), and a zero-rate reference point (which would divide by
// zero) each return a distinct error instead of a silent 0.
func (s Series) EfficiencyChecked(refPlaces int) (float64, error) {
	if len(s.Points) == 0 {
		return 0, fmt.Errorf("harness: efficiency of empty series %q", s.Name)
	}
	if len(s.Points) == 1 {
		return 0, fmt.Errorf("harness: series %q has a single point (places=%d); efficiency needs a sweep",
			s.Name, s.Points[0].Places)
	}
	ref := s.Points[0]
	for _, p := range s.Points {
		if p.Places >= refPlaces {
			ref = p
			break
		}
	}
	last := s.Points[len(s.Points)-1]
	if ref.Places == last.Places {
		return 0, fmt.Errorf("harness: series %q reference and largest run are both places=%d",
			s.Name, ref.Places)
	}
	rate := func(p Point) (float64, error) {
		if s.TimeBased {
			if p.Aggregate == 0 {
				return 0, fmt.Errorf("harness: series %q has zero time at places=%d", s.Name, p.Places)
			}
			// Weak scaling: total work is proportional to places.
			return float64(p.Places) / p.Aggregate, nil
		}
		return p.Aggregate, nil
	}
	r0, err := rate(ref)
	if err != nil {
		return 0, err
	}
	r1, err := rate(last)
	if err != nil {
		return 0, err
	}
	if r0 == 0 {
		return 0, fmt.Errorf("harness: series %q has zero throughput at reference places=%d",
			s.Name, ref.Places)
	}
	ideal := idealSpeedup(last.Places) / idealSpeedup(ref.Places)
	if ideal == 0 {
		return 0, fmt.Errorf("harness: series %q has zero ideal speedup", s.Name)
	}
	return (r1 / r0) / ideal, nil
}

// idealSpeedup is the best throughput multiple p places can achieve on
// this host: p while cores remain, the core count beyond that.
func idealSpeedup(p int) float64 {
	c := runtime.GOMAXPROCS(0)
	if p < c {
		return float64(p)
	}
	return float64(c)
}

// Print renders the series as an aligned table.
func (s Series) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", s.Name)
	fmt.Fprintf(w, "%8s  %16s  %16s  %s\n", "places", s.AggregateUnit, s.PerUnitUnit, "notes")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%8d  %16.4f  %16.4f  %s\n", p.Places, p.Aggregate, p.PerUnit, p.Note)
	}
}

// Row is one line of a comparison table.
type Row struct {
	Name   string
	Values []string
}

// Table is a titled comparison table (Tables 1 and 2 of the paper).
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// Print renders the table with aligned columns.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("benchmark")
	for _, r := range t.Rows {
		if len(r.Name) > widths[0] {
			widths[0] = len(r.Name)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Values) && len(r.Values[i]) > widths[i+1] {
				widths[i+1] = len(r.Values[i])
			}
		}
	}
	line := func(name string, vals []string) {
		fmt.Fprintf(w, "%-*s", widths[0], name)
		for i := range t.Columns {
			v := ""
			if i < len(vals) {
				v = vals[i]
			}
			fmt.Fprintf(w, "  %*s", widths[i+1], v)
		}
		fmt.Fprintln(w)
	}
	line("benchmark", t.Columns)
	fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*len(t.Columns)))
	for _, r := range t.Rows {
		line(r.Name, r.Values)
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Scale selects experiment sizing. The experiments weak-scale per the
// paper; Scale sets the per-place base problem size and the place sweep so
// runs fit the available machine.
type Scale int

const (
	// Tiny is CI-sized: seconds per experiment.
	Tiny Scale = iota
	// Small is laptop-sized: tens of seconds for the full set.
	Small
	// Medium exercises larger place counts and problem sizes.
	Medium
)

// PlaceSweep returns the place counts used at this scale (powers of two,
// like the paper's runs).
func (s Scale) PlaceSweep() []int {
	switch s {
	case Tiny:
		return []int{1, 2, 4}
	case Small:
		return []int{1, 2, 4, 8, 16}
	default:
		return []int{1, 2, 4, 8, 16, 32, 64}
	}
}

// fmtG formats a float compactly.
func fmtG(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// fmtPct formats a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
