package integration

import (
	"testing"
	"time"

	"apgas/internal/apps/hpl"
	"apgas/internal/apps/kmeans"
	"apgas/internal/apps/randomaccess"
	"apgas/internal/apps/uts"
	"apgas/internal/collectives"
	"apgas/internal/core"
	"apgas/internal/glb"
	"apgas/internal/kernels/sha1rng"
	"apgas/internal/netsim"
	"apgas/internal/x10rt"
)

// adverseRuntime builds a runtime whose transport injects Power 775-shaped
// per-hop latency (scaled down to keep tests fast) and reorders control
// messages — the conditions §3.1's protocols are designed for.
func adverseRuntime(t *testing.T, places int, seed int64) *core.Runtime {
	t.Helper()
	m := netsim.Power775()
	m.CoresPerOctant = 2 // tiny "hosts" so even small place counts span hops
	m.OctantsPerDrawer = 2
	m.DrawersPerSupernode = 1
	lat := m.LatencyFunc(netsim.LatencyParams{
		Local:          200 * time.Nanosecond,
		PerHop:         2 * time.Microsecond,
		BytesPerSecond: 1e9,
		Scale:          1,
	})
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{
		Places:      places,
		ReorderSeed: seed,
		Latency: func(src, dst, bytes int, class x10rt.Class) time.Duration {
			return lat(src, dst, bytes, uint8(class))
		},
	})
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	rt, err := core.NewRuntime(core.Config{
		Places:        places,
		PlacesPerHost: 2,
		Transport:     tr,
		CheckPatterns: true,
	})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestUTSUnderAdverseNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tree := sha1rng.Geometric{B0: 4, Depth: 11, Seed: 19}
	want, _ := tree.CountSequential()
	rt := adverseRuntime(t, 8, 4242)
	res, err := uts.Run(rt, uts.Config{
		Tree: tree,
		GLB:  glb.Config{Quantum: 128, DenseFinish: true},
	})
	if err != nil {
		t.Fatalf("uts: %v", err)
	}
	if res.Nodes != want {
		t.Fatalf("counted %d nodes, want %d", res.Nodes, want)
	}
}

func TestHPLUnderAdverseNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rt := adverseRuntime(t, 4, 777)
	res, err := hpl.Run(rt, hpl.Config{N: 64, NB: 8, P: 2, Q: 2, Seed: 3,
		Mode: collectives.ModeEmulated})
	if err != nil {
		t.Fatalf("hpl: %v", err)
	}
	if res.Residual > 16 {
		t.Fatalf("residual %g", res.Residual)
	}
}

func TestRandomAccessUnderAdverseNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rt := adverseRuntime(t, 4, 99)
	res, err := randomaccess.Run(rt, randomaccess.Config{
		Log2TablePerPlace: 8, Verify: true, Batch: 16,
	})
	if err != nil {
		t.Fatalf("ra: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d verification errors", res.Errors)
	}
}

func TestKMeansUnderAdverseNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rt := adverseRuntime(t, 4, 55)
	cfg := kmeans.Config{
		PointsPerPlace: 200, Clusters: 8, Dim: 3, Iterations: 3, Seed: 5,
		Mode: collectives.ModeEmulated,
	}
	res, err := kmeans.Run(rt, cfg)
	if err != nil {
		t.Fatalf("kmeans: %v", err)
	}
	_, wantDist := kmeans.Sequential(cfg, 4)
	diff := res.Distortion - wantDist
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-9*(1+wantDist) {
		t.Fatalf("distortion %v, want %v", res.Distortion, wantDist)
	}
}

// TestManyPlacesUnderReordering pushes the dense finish + GLB combination
// through a larger place count with reordering only (no latency, for
// speed).
func TestManyPlacesUnderReordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tr, err := x10rt.NewChanTransport(x10rt.ChanOptions{Places: 32, ReorderSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(core.Config{Places: 32, PlacesPerHost: 8, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	tree := sha1rng.Geometric{B0: 4, Depth: 12, Seed: 19}
	want, _ := tree.CountSequential()
	res, err := uts.Run(rt, uts.Config{Tree: tree, GLB: glb.Config{DenseFinish: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != want {
		t.Fatalf("counted %d, want %d", res.Nodes, want)
	}
}
