// Package integration holds cross-package end-to-end tests: full benchmark
// kernels executed on transports with injected Power 775 link latency and
// adversarial control-message reordering, verifying that the runtime's
// protocols stay correct when the network behaves like a network.
package integration
